/**
 * @file
 * hotspot and pathfinder implementations.
 */

#include "workloads/wl_stencil.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

// ----------------------------------------------------------------
// hotspot
// ----------------------------------------------------------------

namespace {
constexpr float hs_c1 = 0.15f;   // lateral conduction coefficient
constexpr float hs_c2 = 0.0625f; // power injection coefficient
} // namespace

Hotspot::Hotspot(unsigned scale)
    : Workload("hotspot"), _dim(128 * scale), _steps(2)
{
}

std::string
Hotspot::description() const
{
    return "Processor temperature estimation";
}

std::string
Hotspot::origin() const
{
    return "Rodinia";
}

std::vector<KernelLaunch>
Hotspot::prepare(perf::Gpu &gpu)
{
    const unsigned d = _dim;
    _temp = randomFloats(static_cast<size_t>(d) * d, 0x407, 40.0f, 90.0f);
    _power = randomFloats(static_cast<size_t>(d) * d, 0x408, 0.0f, 8.0f);
    _addr_t_in = gpu.allocator().alloc(d * d * 4);
    _addr_t_out = gpu.allocator().alloc(d * d * 4);
    _addr_p = gpu.allocator().alloc(d * d * 4);
    gpu.memcpyToDevice(_addr_t_in, _temp.data(), d * d * 4);
    gpu.memcpyToDevice(_addr_p, _power.data(), d * d * 4);

    auto build = [&](uint32_t src, uint32_t dst) {
        KernelBuilder b("hotspot", 20);
        b.imad(0, S(SpecialReg::CtaIdX), I(16), S(SpecialReg::TidX));
        b.imad(1, S(SpecialReg::CtaIdY), I(16), S(SpecialReg::TidY));
        b.imad(2, R(1), I(d), R(0));            // idx = y*d + x
        b.imad(3, R(2), I(4), I(src));
        b.ldg(4, R(3));                          // t_c
        b.imad(5, R(2), I(4), I(_addr_p));
        b.ldg(6, R(5));                          // p_c
        // Clamped neighbor indices via predicated selects.
        // up: y > 0 ? idx - d : idx
        b.setp(0, Cmp::GT, CmpType::U32, R(1), I(0));
        b.isub(7, R(2), I(d));
        b.selp(7, 0, R(7), R(2));
        b.imad(7, R(7), I(4), I(src));
        b.ldg(8, R(7));                          // t_up
        // down: y < d-1 ? idx + d : idx
        b.setp(1, Cmp::LT, CmpType::U32, R(1), I(d - 1));
        b.iadd(9, R(2), I(d));
        b.selp(9, 1, R(9), R(2));
        b.imad(9, R(9), I(4), I(src));
        b.ldg(10, R(9));                         // t_down
        // left: x > 0 ? idx - 1 : idx
        b.setp(2, Cmp::GT, CmpType::U32, R(0), I(0));
        b.isub(11, R(2), I(1));
        b.selp(11, 2, R(11), R(2));
        b.imad(11, R(11), I(4), I(src));
        b.ldg(12, R(11));                        // t_left
        // right: x < d-1 ? idx + 1 : idx
        b.setp(3, Cmp::LT, CmpType::U32, R(0), I(d - 1));
        b.iadd(13, R(2), I(1));
        b.selp(13, 3, R(13), R(2));
        b.imad(13, R(13), I(4), I(src));
        b.ldg(14, R(13));                        // t_right
        // result = t_c + c1*(up+down-2c) + c1*(left+right-2c) + c2*p
        b.fadd(15, R(8), R(10));
        b.fadd(16, R(4), R(4));
        b.fsub(15, R(15), R(16));
        b.fmul(15, R(15), F(hs_c1));
        b.fadd(17, R(12), R(14));
        b.fsub(17, R(17), R(16));
        b.ffma(15, R(17), F(hs_c1), R(15));
        b.ffma(15, R(6), F(hs_c2), R(15));
        b.fadd(15, R(15), R(4));
        b.imad(18, R(2), I(4), I(dst));
        b.stg(R(18), R(15));
        b.exit();
        return b.finish();
    };

    std::vector<KernelLaunch> seq;
    uint32_t src = _addr_t_in;
    uint32_t dst = _addr_t_out;
    for (unsigned s = 0; s < _steps; ++s) {
        KernelLaunch k;
        k.label = "hotspot";
        k.prog = build(src, dst);
        k.launch.grid = {d / 16, d / 16};
        k.launch.block = {16, 16};
        seq.push_back(std::move(k));
        std::swap(src, dst);
    }
    return seq;
}

bool
Hotspot::verify(perf::Gpu &gpu) const
{
    const unsigned d = _dim;
    std::vector<float> cur = _temp;
    std::vector<float> next(cur.size());
    for (unsigned s = 0; s < _steps; ++s) {
        for (unsigned y = 0; y < d; ++y) {
            for (unsigned x = 0; x < d; ++x) {
                size_t idx = static_cast<size_t>(y) * d + x;
                float c = cur[idx];
                float up = y > 0 ? cur[idx - d] : c;
                float down = y < d - 1 ? cur[idx + d] : c;
                float left = x > 0 ? cur[idx - 1] : c;
                float right = x < d - 1 ? cur[idx + 1] : c;
                float r = (up + down - 2.0f * c) * hs_c1;
                r = (left + right - 2.0f * c) * hs_c1 + r;
                r = _power[idx] * hs_c2 + r;
                next[idx] = r + c;
            }
        }
        std::swap(cur, next);
    }
    // After an even number of steps the result is in t_in's buffer
    // only if steps is even... the device ping-pongs starting at
    // t_in, so the final data lives in t_out for odd steps, t_in
    // for even steps > 0.
    uint32_t final_addr = (_steps % 2 == 1) ? _addr_t_out : _addr_t_in;
    std::vector<float> got(static_cast<size_t>(d) * d);
    gpu.memcpyToHost(got.data(), final_addr, d * d * 4);
    for (size_t i = 0; i < got.size(); ++i) {
        if (!closeEnough(got[i], cur[i], 1e-3f))
            return false;
    }
    return true;
}

// ----------------------------------------------------------------
// pathfinder
// ----------------------------------------------------------------

Pathfinder::Pathfinder(unsigned scale)
    : Workload("pathfinder"), _cols(2048 * scale), _rows(8)
{
}

std::string
Pathfinder::description() const
{
    return "Dynamic programming path search";
}

std::string
Pathfinder::origin() const
{
    return "Rodinia";
}

std::vector<KernelLaunch>
Pathfinder::prepare(perf::Gpu &gpu)
{
    const unsigned cols = _cols;
    const unsigned threads = 256;
    _wall = randomInts(static_cast<size_t>(cols) * _rows, 0x9A7F + cols,
                       10);
    _addr_wall = gpu.allocator().alloc(cols * _rows * 4);
    _addr_src = gpu.allocator().alloc(cols * 4);
    _addr_dst = gpu.allocator().alloc(cols * 4);
    gpu.memcpyToDevice(_addr_wall, _wall.data(), cols * _rows * 4);
    // Row 0 seeds the DP.
    gpu.memcpyToDevice(_addr_src, _wall.data(), cols * 4);

    auto build = [&](unsigned row, uint32_t src, uint32_t dst) {
        KernelBuilder b("dynproc_kernel", 14, (threads + 2) * 4);
        b.mov(0, S(SpecialReg::TidX));
        b.imad(1, S(SpecialReg::CtaIdX), I(threads), R(0)); // gx
        // smem[tid+1] = src[gx]
        b.imad(2, R(1), I(4), I(src));
        b.ldg(3, R(2));
        b.imad(4, R(0), I(4), I(4));     // (tid+1)*4
        b.sts(R(4), R(3));
        // halo loads by the edge threads (divergent on purpose)
        auto no_left = b.newLabel();
        b.setp(0, Cmp::NE, CmpType::U32, R(0), I(0));
        b.braIf(0, false, no_left, no_left);
        // left halo: gx>0 ? src[gx-1] : INT_MAX/2
        b.setp(1, Cmp::GT, CmpType::U32, R(1), I(0));
        b.isub(5, R(1), I(1));
        b.imad(5, R(5), I(4), I(src));
        b.mov(6, I(0x3fffffff));
        b.pred(1).ldg(6, R(5));
        b.sts(I(0), R(6));
        b.bind(no_left);
        auto no_right = b.newLabel();
        b.setp(0, Cmp::NE, CmpType::U32, R(0), I(threads - 1));
        b.braIf(0, false, no_right, no_right);
        b.iadd(7, R(1), I(1));
        b.setp(1, Cmp::LT, CmpType::U32, R(7), I(cols));
        b.imad(8, R(7), I(4), I(src));
        b.mov(9, I(0x3fffffff));
        b.pred(1).ldg(9, R(8));
        b.sts(I((threads + 1) * 4), R(9));
        b.bind(no_right);
        b.bar();
        // dst[gx] = wall[row][gx] + min3(smem[tid], smem[tid+1],
        //                                smem[tid+2])
        b.lds(10, R(4), -4);
        b.lds(11, R(4));
        b.lds(12, R(4), 4);
        b.imin(10, R(10), R(11));
        b.imin(10, R(10), R(12));
        b.imad(13, R(1), I(4),
               I(_addr_wall + row * cols * 4));
        b.ldg(13, R(13));
        b.iadd(10, R(10), R(13));
        b.imad(2, R(1), I(4), I(dst));
        b.stg(R(2), R(10));
        b.exit();
        return b.finish();
    };

    std::vector<KernelLaunch> seq;
    uint32_t src = _addr_src;
    uint32_t dst = _addr_dst;
    for (unsigned row = 1; row < _rows; ++row) {
        KernelLaunch k;
        k.label = "pathfinder";
        k.prog = build(row, src, dst);
        k.launch.grid = {cols / threads, 1};
        k.launch.block = {threads, 1};
        seq.push_back(std::move(k));
        std::swap(src, dst);
    }
    return seq;
}

bool
Pathfinder::verify(perf::Gpu &gpu) const
{
    const unsigned cols = _cols;
    std::vector<uint32_t> cur(_wall.begin(), _wall.begin() + cols);
    std::vector<uint32_t> next(cols);
    for (unsigned row = 1; row < _rows; ++row) {
        for (unsigned x = 0; x < cols; ++x) {
            uint32_t best = cur[x];
            if (x > 0)
                best = std::min(best, cur[x - 1]);
            if (x < cols - 1)
                best = std::min(best, cur[x + 1]);
            next[x] = _wall[static_cast<size_t>(row) * cols + x] + best;
        }
        std::swap(cur, next);
    }
    uint32_t final_addr = (_rows % 2 == 0) ? _addr_dst : _addr_src;
    std::vector<uint32_t> got(cols);
    gpu.memcpyToHost(got.data(), final_addr, cols * 4);
    for (unsigned x = 0; x < cols; ++x) {
        if (got[x] != cur[x])
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
