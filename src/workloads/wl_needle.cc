/**
 * @file
 * Needleman-Wunsch wavefront implementation.
 */

#include "workloads/wl_needle.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

Needle::Needle(unsigned scale)
    : Workload("needle"), _n(128 * scale)
{
    GSP_ASSERT(_n % tile == 0, "needle size must be a tile multiple");
}

std::string
Needle::description() const
{
    return "Needleman-Wunsch sequence alignment";
}

std::string
Needle::origin() const
{
    return "Rodinia";
}

perf::KernelProgram
Needle::buildKernel(unsigned s, bool second_half) const
{
    const unsigned n = _n;
    const unsigned stride = n + 1;          // score row stride
    const unsigned nt = n / tile;
    const unsigned base_x = second_half ? s - (nt - 1) : 0;

    KernelBuilder b(second_half ? "needle_cuda_2" : "needle_cuda_1", 16,
                    17 * 17 * 4);
    b.mov(0, S(SpecialReg::TidX));
    b.iadd(1, S(SpecialReg::CtaIdX), I(base_x));   // tile x
    b.isub(2, I(s), R(1));                         // tile y
    b.imul(3, R(2), I(tile));                      // gy
    b.imul(4, R(1), I(tile));                      // gx

    // Top halo: s[0][tid+1] = score[gy][gx+tid+1]; thread 0 also the
    // corner s[0][0] = score[gy][gx].
    b.imad(5, R(3), I(stride), R(4));              // score idx of corner
    b.iadd(6, R(5), R(0));
    b.iadd(6, R(6), I(1));
    b.imad(6, R(6), I(4), I(_addr_score));
    b.ldg(7, R(6));
    b.imad(8, R(0), I(4), I(4));                   // (tid+1)*4
    b.sts(R(8), R(7));
    auto no_corner = b.newLabel();
    b.setp(0, Cmp::NE, CmpType::U32, R(0), I(0));
    b.braIf(0, false, no_corner, no_corner);
    b.imad(6, R(5), I(4), I(_addr_score));
    b.ldg(7, R(6));
    b.sts(I(0), R(7));
    b.bind(no_corner);
    // Left halo: s[tid+1][0] = score[gy+tid+1][gx].
    b.iadd(6, R(3), R(0));
    b.iadd(6, R(6), I(1));
    b.imad(6, R(6), I(stride), R(4));
    b.imad(6, R(6), I(4), I(_addr_score));
    b.ldg(7, R(6));
    b.imul(9, R(0), I(17 * 4));
    b.iadd(9, R(9), I(17 * 4));                    // (tid+1)*17*4
    b.sts(R(9), R(7));
    b.bar();

    // Internal wavefront: m = 0 .. 2*tile-2.
    b.mov(10, I(0));
    auto wave = b.newLabel();
    auto wave_end = b.newLabel();
    b.bind(wave);
    b.setp(0, Cmp::GE, CmpType::U32, R(10), I(2 * tile - 1));
    b.braIf(0, false, wave_end, wave_end);
    // Active cell: tid <= m and m - tid < tile.
    auto skip = b.newLabel();
    b.setp(1, Cmp::GT, CmpType::U32, R(0), R(10));
    b.isub(11, R(10), R(0));
    b.setp(2, Cmp::GE, CmpType::U32, R(11), I(tile));
    b.selp(12, 1, I(1), I(0));
    b.selp(13, 2, I(1), I(0));
    b.ior(12, R(12), R(13));
    b.setp(1, Cmp::NE, CmpType::U32, R(12), I(0));
    b.braIf(1, false, skip, skip);
    // i = tid + 1 (row), j = m - tid + 1 (col) in the shared tile.
    b.iadd(11, R(11), I(1));                       // j
    // smem offsets: cell (i, j) at ((tid+1)*17 + j) * 4.
    b.imad(12, R(11), I(4), R(9));                 // s[i][j] addr
    // ref[(gy + tid)*n + gx + j - 1]
    b.iadd(13, R(3), R(0));
    b.imad(13, R(13), I(n), R(4));
    b.iadd(13, R(13), R(11));
    b.isub(13, R(13), I(1));
    b.imad(13, R(13), I(4), I(_addr_ref));
    b.ldg(13, R(13));
    // up-left + ref
    b.lds(14, R(12), -(17 * 4) - 4);
    b.iadd(14, R(14), R(13));
    // up - penalty
    b.lds(15, R(12), -(17 * 4));
    b.isub(15, R(15), I(penalty));
    b.imax(14, R(14), R(15));
    // left - penalty
    b.lds(15, R(12), -4);
    b.isub(15, R(15), I(penalty));
    b.imax(14, R(14), R(15));
    b.sts(R(12), R(14));
    b.bind(skip);
    b.bar();
    b.iadd(10, R(10), I(1));
    b.jump(wave);
    b.bind(wave_end);

    // Write the tile back: thread t stores row gy+t+1.
    b.iadd(6, R(3), R(0));
    b.iadd(6, R(6), I(1));
    b.imad(6, R(6), I(stride), R(4));
    b.imad(6, R(6), I(4), I(_addr_score));         // &score[gy+t+1][gx]
    for (unsigned j = 1; j <= tile; ++j) {
        b.lds(7, R(9), static_cast<int32_t>(j * 4));
        b.stg(R(6), R(7), static_cast<int32_t>(j * 4));
    }
    b.exit();
    return b.finish();
}

std::vector<KernelLaunch>
Needle::prepare(perf::Gpu &gpu)
{
    const unsigned n = _n;
    const unsigned stride = n + 1;
    const unsigned nt = n / tile;

    std::vector<uint32_t> refu =
        randomInts(static_cast<size_t>(n) * n, 0x4E3D, 21);
    _ref.assign(refu.size(), 0);
    for (size_t i = 0; i < refu.size(); ++i)
        _ref[i] = static_cast<int32_t>(refu[i]) - 10;   // -10..10

    _addr_ref = gpu.allocator().alloc(n * n * 4);
    _addr_score = gpu.allocator().alloc(stride * stride * 4);
    gpu.memcpyToDevice(_addr_ref, _ref.data(), n * n * 4);

    std::vector<int32_t> score(static_cast<size_t>(stride) * stride, 0);
    for (unsigned i = 0; i <= n; ++i) {
        score[static_cast<size_t>(i) * stride] =
            -static_cast<int32_t>(i) * penalty;
        score[i] = -static_cast<int32_t>(i) * penalty;
    }
    gpu.memcpyToDevice(_addr_score, score.data(),
                       stride * stride * 4);

    std::vector<KernelLaunch> seq;
    // First half: diagonals s = 0..nt-1 (s tiles have x+y == s).
    for (unsigned s = 0; s < nt; ++s) {
        KernelLaunch k;
        k.label = "needle1";
        k.prog = buildKernel(s, false);
        k.launch.grid = {s + 1, 1};
        k.launch.block = {tile, 1};
        seq.push_back(std::move(k));
    }
    // Second half: diagonals s = nt..2nt-2.
    for (unsigned s = nt; s <= 2 * nt - 2; ++s) {
        KernelLaunch k;
        k.label = "needle2";
        k.prog = buildKernel(s, true);
        k.launch.grid = {2 * nt - 1 - s, 1};
        k.launch.block = {tile, 1};
        seq.push_back(std::move(k));
    }
    return seq;
}

bool
Needle::verify(perf::Gpu &gpu) const
{
    const unsigned n = _n;
    const unsigned stride = n + 1;
    std::vector<int32_t> want(static_cast<size_t>(stride) * stride, 0);
    for (unsigned i = 0; i <= n; ++i) {
        want[static_cast<size_t>(i) * stride] =
            -static_cast<int32_t>(i) * penalty;
        want[i] = -static_cast<int32_t>(i) * penalty;
    }
    for (unsigned i = 1; i <= n; ++i) {
        for (unsigned j = 1; j <= n; ++j) {
            int32_t ul = want[(i - 1) * stride + (j - 1)] +
                         _ref[(i - 1) * n + (j - 1)];
            int32_t up = want[(i - 1) * stride + j] - penalty;
            int32_t left = want[i * stride + (j - 1)] - penalty;
            want[i * stride + j] = std::max(ul, std::max(up, left));
        }
    }
    std::vector<int32_t> got(static_cast<size_t>(stride) * stride);
    gpu.memcpyToHost(got.data(), _addr_score, stride * stride * 4);
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != want[i])
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
