/**
 * @file
 * Shared shorthand for kernel construction in the workload sources:
 * terse operand constructors and deterministic input generators.
 * Internal to the workloads library.
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_COMMON_HH
#define GPUSIMPOW_WORKLOADS_WL_COMMON_HH

#include <cmath>
#include <vector>

#include "common/random.hh"
#include "perf/isa.hh"
#include "perf/kernel.hh"

namespace gpusimpow {
namespace workloads {

using perf::Cmp;
using perf::CmpType;
using perf::KernelBuilder;
using perf::Operand;
using perf::SpecialReg;

/** Register operand. */
inline Operand R(unsigned r) { return Operand::reg(r); }
/** Integer immediate operand. */
inline Operand I(uint32_t v) { return Operand::imm(v); }
/** Float immediate operand. */
inline Operand F(float v) { return Operand::immf(v); }
/** Special register operand. */
inline Operand S(SpecialReg s) { return Operand::special(s); }

/** Deterministic uniform floats in [lo, hi). */
inline std::vector<float>
randomFloats(size_t n, uint64_t seed, float lo = 0.0f, float hi = 1.0f)
{
    SplitMix64 rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * static_cast<float>(rng.nextDouble());
    return v;
}

/** Deterministic uniform integers in [0, bound). */
inline std::vector<uint32_t>
randomInts(size_t n, uint64_t seed, uint32_t bound)
{
    SplitMix64 rng(seed);
    std::vector<uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.nextBounded(bound));
    return v;
}

/** Relative-tolerance float comparison for verification. */
inline bool
closeEnough(float got, float want, float tol = 1e-3f)
{
    float diff = std::fabs(got - want);
    float mag = std::fabs(want);
    return diff <= tol * (mag > 1.0f ? mag : 1.0f);
}

/**
 * Emit the canonical global-thread-index prologue:
 * reg <- ctaid.x * ntid.x + tid.x.
 */
inline void
emitGlobalTid(KernelBuilder &b, unsigned reg)
{
    b.imad(reg, S(SpecialReg::CtaIdX), S(SpecialReg::NTidX),
           S(SpecialReg::TidX));
}

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_COMMON_HH
