/**
 * @file
 * kmeans, backprop, and heartwall implementations.
 */

#include "workloads/wl_learning.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

// ----------------------------------------------------------------
// kmeans
// ----------------------------------------------------------------

Kmeans::Kmeans(unsigned scale)
    : Workload("kmeans"), _points(16384 * scale), _clusters(8), _dims(4)
{
}

std::string
Kmeans::description() const
{
    return "k-means clustering";
}

std::string
Kmeans::origin() const
{
    return "Rodinia";
}

std::vector<KernelLaunch>
Kmeans::prepare(perf::Gpu &gpu)
{
    const unsigned n = _points;
    const unsigned k = _clusters;
    const unsigned d = _dims;
    _features = randomFloats(static_cast<size_t>(n) * d, 0x6B31, 0.0f,
                             16.0f);
    _centroids = randomFloats(static_cast<size_t>(k) * d, 0x6B32, 0.0f,
                              16.0f);
    _addr_features = gpu.allocator().alloc(n * d * 4);
    _addr_membership = gpu.allocator().alloc(n * 4);
    _addr_counts = gpu.allocator().alloc(k * 4);
    _addr_sums = gpu.allocator().alloc(k * d * 4);
    gpu.memcpyToDevice(_addr_features, _features.data(), n * d * 4);
    std::vector<uint32_t> zeros(static_cast<size_t>(k) * d, 0);
    gpu.memcpyToDevice(_addr_counts, zeros.data(), k * 4);
    gpu.memcpyToDevice(_addr_sums, zeros.data(), k * d * 4);
    // Centroids live in the cached constant segment, as in Rodinia.
    _addr_centroids = 0;
    gpu.constMem().write(_addr_centroids, _centroids.data(), k * d * 4);

    std::vector<KernelLaunch> seq;

    // ---- kmeans1: nearest-centroid membership ----
    {
        KernelBuilder b("kmeansPoint", 16);
        emitGlobalTid(b, 0);
        b.imul(1, R(0), I(d * 4));
        b.iadd(1, R(1), I(_addr_features));   // feature base addr
        b.mov(2, F(1e30f));                   // best distance
        b.mov(3, I(0));                       // best cluster
        b.mov(4, I(0));                       // cluster index
        auto loop = b.newLabel();
        auto done = b.newLabel();
        b.bind(loop);
        b.setp(0, Cmp::GE, CmpType::U32, R(4), I(k));
        b.braIf(0, false, done, done);
        b.mov(5, F(0.0f));                    // dist
        b.imul(6, R(4), I(d * 4));            // centroid offset
        for (unsigned dim = 0; dim < 4; ++dim) {
            b.ldg(7, R(1), static_cast<int32_t>(dim * 4));
            b.ldc(8, R(6), static_cast<int32_t>(dim * 4));
            b.fsub(9, R(7), R(8));
            b.ffma(5, R(9), R(9), R(5));
        }
        b.setp(1, Cmp::LT, CmpType::F32, R(5), R(2));
        b.selp(2, 1, R(5), R(2));
        b.selp(3, 1, R(4), R(3));
        b.iadd(4, R(4), I(1));
        b.jump(loop);
        b.bind(done);
        b.imad(10, R(0), I(4), I(_addr_membership));
        b.stg(R(10), R(3));
        b.exit();
        KernelLaunch kl;
        kl.label = "kmeans1";
        kl.prog = b.finish();
        kl.launch.grid = {n / 256, 1};
        kl.launch.block = {256, 1};
        seq.push_back(std::move(kl));
    }

    // ---- kmeans2: centroid accumulation with atomics ----
    {
        KernelBuilder b("kmeansUpdate", 14);
        emitGlobalTid(b, 0);
        b.imad(1, R(0), I(4), I(_addr_membership));
        b.ldg(2, R(1));                        // my cluster
        b.imad(3, R(2), I(4), I(_addr_counts));
        b.atomgAdd(4, R(3), I(1));
        b.imul(5, R(0), I(d * 4));
        b.iadd(5, R(5), I(_addr_features));
        b.imul(6, R(2), I(d * 4));
        b.iadd(6, R(6), I(_addr_sums));
        for (unsigned dim = 0; dim < 4; ++dim) {
            b.ldg(7, R(5), static_cast<int32_t>(dim * 4));
            b.fmul(7, R(7), F(1024.0f));       // fixed-point scale
            b.f2i(7, R(7));
            b.atomgAdd(8, R(6), R(7), static_cast<int32_t>(dim * 4));
        }
        b.exit();
        KernelLaunch kl;
        kl.label = "kmeans2";
        kl.prog = b.finish();
        kl.launch.grid = {n / 256, 1};
        kl.launch.block = {256, 1};
        seq.push_back(std::move(kl));
    }

    return seq;
}

bool
Kmeans::verify(perf::Gpu &gpu) const
{
    const unsigned n = _points;
    const unsigned k = _clusters;
    const unsigned d = _dims;
    std::vector<uint32_t> membership(n);
    std::vector<uint32_t> counts(k);
    std::vector<int32_t> sums(static_cast<size_t>(k) * d);
    gpu.memcpyToHost(membership.data(), _addr_membership, n * 4);
    gpu.memcpyToHost(counts.data(), _addr_counts, k * 4);
    gpu.memcpyToHost(sums.data(), _addr_sums, k * d * 4);

    std::vector<uint32_t> want_counts(k, 0);
    std::vector<int64_t> want_sums(static_cast<size_t>(k) * d, 0);
    for (unsigned p = 0; p < n; ++p) {
        float best = 1e30f;
        unsigned best_k = 0;
        for (unsigned c = 0; c < k; ++c) {
            float dist = 0.0f;
            for (unsigned dim = 0; dim < d; ++dim) {
                float diff = _features[p * d + dim] -
                             _centroids[c * d + dim];
                dist = diff * diff + dist;
            }
            if (dist < best) {
                best = dist;
                best_k = c;
            }
        }
        if (membership[p] != best_k)
            return false;
        ++want_counts[best_k];
        for (unsigned dim = 0; dim < d; ++dim) {
            want_sums[best_k * d + dim] += static_cast<int32_t>(
                _features[p * d + dim] * 1024.0f);
        }
    }
    for (unsigned c = 0; c < k; ++c) {
        if (counts[c] != want_counts[c])
            return false;
        for (unsigned dim = 0; dim < d; ++dim) {
            if (sums[c * d + dim] !=
                static_cast<int32_t>(want_sums[c * d + dim])) {
                return false;
            }
        }
    }
    return true;
}

// ----------------------------------------------------------------
// backprop
// ----------------------------------------------------------------

Backprop::Backprop(unsigned scale)
    : Workload("backprop"), _in(4096 * scale), _hid(64)
{
}

std::string
Backprop::description() const
{
    return "Multi-layer perceptron training";
}

std::string
Backprop::origin() const
{
    return "Rodinia";
}

std::vector<KernelLaunch>
Backprop::prepare(perf::Gpu &gpu)
{
    const unsigned in = _in;
    const unsigned hid = _hid;
    const unsigned threads = 256;
    _input = randomFloats(in, 0xB901, -1.0f, 1.0f);
    _weights = randomFloats(static_cast<size_t>(in) * hid, 0xB902,
                            -0.1f, 0.1f);
    _delta = randomFloats(hid, 0xB903, -0.5f, 0.5f);
    _addr_input = gpu.allocator().alloc(in * 4);
    _addr_weights = gpu.allocator().alloc(in * hid * 4);
    _addr_hidden = gpu.allocator().alloc(hid * 4);
    _addr_delta = gpu.allocator().alloc(hid * 4);
    _addr_weights_out = gpu.allocator().alloc(in * hid * 4);
    gpu.memcpyToDevice(_addr_input, _input.data(), in * 4);
    gpu.memcpyToDevice(_addr_weights, _weights.data(), in * hid * 4);
    gpu.memcpyToDevice(_addr_delta, _delta.data(), hid * 4);

    std::vector<KernelLaunch> seq;

    // ---- backprop1: layerforward (one block per hidden unit) ----
    {
        constexpr float log2e = 1.44269504f;
        KernelBuilder b("layerforward", 14, threads * 4);
        b.mov(0, S(SpecialReg::TidX));
        b.mov(1, S(SpecialReg::CtaIdX));      // hidden unit j
        b.mov(2, F(0.0f));                    // partial
        b.mov(3, R(0));                       // i = tid
        auto loop = b.newLabel();
        auto loop_end = b.newLabel();
        b.bind(loop);
        b.setp(0, Cmp::GE, CmpType::U32, R(3), I(in));
        b.braIf(0, false, loop_end, loop_end);
        b.imad(4, R(3), I(4), I(_addr_input));
        b.ldg(5, R(4));
        // w[i][j]: row-major in x hid
        b.imad(6, R(3), I(hid), R(1));
        b.imad(6, R(6), I(4), I(_addr_weights));
        b.ldg(7, R(6));
        b.ffma(2, R(5), R(7), R(2));
        b.iadd(3, R(3), I(threads));
        b.jump(loop);
        b.bind(loop_end);
        // SMEM tree reduction.
        b.imul(8, R(0), I(4));
        b.sts(R(8), R(2));
        b.bar();
        for (unsigned stride = threads / 2; stride > 0; stride /= 2) {
            auto skip = b.newLabel();
            b.setp(1, Cmp::GE, CmpType::U32, R(0), I(stride));
            b.braIf(1, false, skip, skip);
            b.lds(9, R(8));
            b.lds(10, R(8), static_cast<int32_t>(stride * 4));
            b.fadd(9, R(9), R(10));
            b.sts(R(8), R(9));
            b.bind(skip);
            b.bar();
        }
        // Thread 0: hidden[j] = sigmoid(sum).
        auto skip_store = b.newLabel();
        b.setp(2, Cmp::NE, CmpType::U32, R(0), I(0));
        b.braIf(2, false, skip_store, skip_store);
        b.lds(9, I(0));
        b.fmul(9, R(9), F(-log2e));
        b.ex2(9, R(9));
        b.fadd(9, R(9), F(1.0f));
        b.rcp(9, R(9));
        b.imad(11, R(1), I(4), I(_addr_hidden));
        b.stg(R(11), R(9));
        b.bind(skip_store);
        b.exit();
        KernelLaunch kl;
        kl.label = "backprop1";
        kl.prog = b.finish();
        kl.launch.grid = {hid, 1};
        kl.launch.block = {threads, 1};
        seq.push_back(std::move(kl));
    }

    // ---- backprop2: adjust_weights (coalesced FP updates) ----
    {
        constexpr float lr = 0.3f;
        KernelBuilder b("adjust_weights", 12);
        emitGlobalTid(b, 0);
        // i = gtid / hid, j = gtid % hid (hid is a power of two).
        unsigned hid_shift = floorLog2(hid);
        b.ishr(1, R(0), I(hid_shift));
        b.iand(2, R(0), I(hid - 1));
        b.imad(3, R(2), I(4), I(_addr_delta));
        b.ldg(4, R(3));                       // delta[j]
        b.imad(5, R(1), I(4), I(_addr_input));
        b.ldg(6, R(5));                       // input[i]
        b.imad(7, R(0), I(4), I(_addr_weights));
        b.ldg(8, R(7));                       // w
        b.fmul(9, R(4), R(6));
        b.ffma(8, R(9), F(lr), R(8));
        b.imad(10, R(0), I(4), I(_addr_weights_out));
        b.stg(R(10), R(8));
        b.exit();
        KernelLaunch kl;
        kl.label = "backprop2";
        kl.prog = b.finish();
        kl.launch.grid = {in * hid / 256, 1};
        kl.launch.block = {256, 1};
        seq.push_back(std::move(kl));
    }

    return seq;
}

bool
Backprop::verify(perf::Gpu &gpu) const
{
    constexpr float log2e = 1.44269504f;
    const unsigned in = _in;
    const unsigned hid = _hid;
    const unsigned threads = 256;

    std::vector<float> hidden(hid);
    gpu.memcpyToHost(hidden.data(), _addr_hidden, hid * 4);
    for (unsigned j = 0; j < hid; ++j) {
        // Mirror the device summation order exactly.
        std::vector<float> partial(threads, 0.0f);
        for (unsigned t = 0; t < threads; ++t)
            for (unsigned i = t; i < in; i += threads)
                partial[t] =
                    _input[i] * _weights[i * hid + j] + partial[t];
        for (unsigned stride = threads / 2; stride > 0; stride /= 2)
            for (unsigned t = 0; t < stride; ++t)
                partial[t] += partial[t + stride];
        float sig =
            1.0f / (std::exp2f(-partial[0] * log2e) + 1.0f);
        if (!closeEnough(hidden[j], sig, 1e-3f))
            return false;
    }

    std::vector<float> wout(static_cast<size_t>(in) * hid);
    gpu.memcpyToHost(wout.data(), _addr_weights_out, in * hid * 4);
    for (unsigned i = 0; i < in; ++i) {
        for (unsigned j = 0; j < hid; ++j) {
            float want = _delta[j] * _input[i] * 0.3f +
                         _weights[i * hid + j];
            if (!closeEnough(wout[i * hid + j], want, 1e-3f))
                return false;
        }
    }
    return true;
}

// ----------------------------------------------------------------
// heartwall
// ----------------------------------------------------------------

Heartwall::Heartwall(unsigned scale)
    : Workload("heartwall"), _dim(96 * scale)
{
}

std::string
Heartwall::description() const
{
    return "Ultrasound image tracking";
}

std::string
Heartwall::origin() const
{
    return "Rodinia";
}

std::vector<KernelLaunch>
Heartwall::prepare(perf::Gpu &gpu)
{
    const unsigned d = _dim;
    const unsigned w = _win;
    _image = randomFloats(static_cast<size_t>(d) * d, 0x4EA1, 0.0f,
                          1.0f);
    _template = randomFloats(static_cast<size_t>(w) * w, 0x4EA2, 0.0f,
                             1.0f);
    _addr_image = gpu.allocator().alloc(d * d * 4);
    _addr_out = gpu.allocator().alloc(d * d * 4);
    gpu.memcpyToDevice(_addr_image, _image.data(), d * d * 4);
    // Template in constant memory (address 1024 to avoid kmeans).
    gpu.constMem().write(1024, _template.data(), w * w * 4);

    KernelBuilder b("heartwall", 16);
    b.imad(0, S(SpecialReg::CtaIdX), I(16), S(SpecialReg::TidX)); // x
    b.imad(1, S(SpecialReg::CtaIdY), I(16), S(SpecialReg::TidY)); // y
    b.imad(2, R(1), I(d), R(0));         // idx
    b.imad(3, R(2), I(4), I(_addr_out));
    // Boundary threads store zero and exit (divergent).
    auto interior = b.newLabel();
    auto boundary = b.newLabel();
    auto end = b.newLabel();
    b.setp(0, Cmp::LT, CmpType::U32, R(0), I(2));
    b.setp(1, Cmp::GE, CmpType::U32, R(0), I(d - 2));
    b.selp(4, 0, I(1), I(0));
    b.selp(5, 1, I(1), I(0));
    b.ior(4, R(4), R(5));
    b.setp(0, Cmp::LT, CmpType::U32, R(1), I(2));
    b.selp(5, 0, I(1), I(0));
    b.ior(4, R(4), R(5));
    b.setp(0, Cmp::GE, CmpType::U32, R(1), I(d - 2));
    b.selp(5, 0, I(1), I(0));
    b.ior(4, R(4), R(5));
    b.setp(0, Cmp::NE, CmpType::U32, R(4), I(0));
    b.braIf(0, false, boundary, end);
    // Interior: 5x5 correlation with the constant-memory template,
    // normalized by the local energy.
    b.bind(interior);
    b.mov(6, F(0.0f));                   // corr
    b.mov(7, F(0.0f));                   // energy
    for (unsigned wy = 0; wy < _win; ++wy) {
        for (unsigned wx = 0; wx < _win; ++wx) {
            int32_t off = (static_cast<int32_t>(wy) - 2) *
                              static_cast<int32_t>(d) +
                          (static_cast<int32_t>(wx) - 2);
            b.iadd(8, R(2), I(static_cast<uint32_t>(off)));
            b.imad(8, R(8), I(4), I(_addr_image));
            b.ldg(9, R(8));
            b.ldc(10, I(1024 + (wy * _win + wx) * 4));
            b.ffma(6, R(9), R(10), R(6));
            b.ffma(7, R(9), R(9), R(7));
        }
    }
    b.fadd(7, R(7), F(1e-6f));
    b.rsqrt(7, R(7));
    b.fmul(6, R(6), R(7));
    b.stg(R(3), R(6));
    b.jump(end);
    b.bind(boundary);
    b.stg(R(3), F(0.0f));
    b.bind(end);
    b.exit();

    KernelLaunch kl;
    kl.label = "heartwall";
    kl.prog = b.finish();
    kl.launch.grid = {d / 16, d / 16};
    kl.launch.block = {16, 16};
    return {std::move(kl)};
}

bool
Heartwall::verify(perf::Gpu &gpu) const
{
    const unsigned d = _dim;
    std::vector<float> out(static_cast<size_t>(d) * d);
    gpu.memcpyToHost(out.data(), _addr_out, d * d * 4);
    for (unsigned y = 0; y < d; ++y) {
        for (unsigned x = 0; x < d; ++x) {
            float want = 0.0f;
            if (x >= 2 && x < d - 2 && y >= 2 && y < d - 2) {
                float corr = 0.0f;
                float energy = 0.0f;
                for (unsigned wy = 0; wy < _win; ++wy) {
                    for (unsigned wx = 0; wx < _win; ++wx) {
                        float img = _image[(y + wy - 2) * d +
                                           (x + wx - 2)];
                        corr = img * _template[wy * _win + wx] + corr;
                        energy = img * img + energy;
                    }
                }
                want = corr * (1.0f / std::sqrt(energy + 1e-6f));
            }
            if (!closeEnough(out[y * d + x], want, 1e-3f))
                return false;
        }
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
