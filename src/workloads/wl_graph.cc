/**
 * @file
 * Rodinia-style frontier BFS (kernels bfs1/bfs2).
 */

#include "workloads/wl_graph.hh"

#include <algorithm>
#include <queue>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

Bfs::Bfs(unsigned scale)
    : Workload("bfs"), _nodes(4096 * scale), _degree(6)
{
}

std::string
Bfs::description() const
{
    return "Breadth-first search";
}

std::string
Bfs::origin() const
{
    return "Rodinia";
}

void
Bfs::buildGraph()
{
    SplitMix64 rng(0xBF5 + _nodes);
    _row_offsets.assign(_nodes + 1, 0);
    std::vector<std::vector<uint32_t>> adj(_nodes);
    // Ring backbone (guarantees connectivity) + random chords.
    for (unsigned n = 0; n < _nodes; ++n) {
        adj[n].push_back((n + 1) % _nodes);
        for (unsigned d = 1; d < _degree; ++d)
            adj[n].push_back(
                static_cast<uint32_t>(rng.nextBounded(_nodes)));
    }
    _edges.clear();
    for (unsigned n = 0; n < _nodes; ++n) {
        _row_offsets[n] = static_cast<uint32_t>(_edges.size());
        for (uint32_t e : adj[n])
            _edges.push_back(e);
    }
    _row_offsets[_nodes] = static_cast<uint32_t>(_edges.size());

    // Host reference BFS from node 0 and level count.
    _host_cost.assign(_nodes, 0xffffffffu);
    _host_cost[0] = 0;
    std::queue<uint32_t> q;
    q.push(0);
    unsigned max_level = 0;
    while (!q.empty()) {
        uint32_t n = q.front();
        q.pop();
        for (uint32_t e = _row_offsets[n]; e < _row_offsets[n + 1]; ++e) {
            uint32_t dest = _edges[e];
            if (_host_cost[dest] == 0xffffffffu) {
                _host_cost[dest] = _host_cost[n] + 1;
                max_level = std::max(max_level, _host_cost[dest]);
                q.push(dest);
            }
        }
    }
    _levels = max_level;
}

std::vector<KernelLaunch>
Bfs::prepare(perf::Gpu &gpu)
{
    buildGraph();
    const unsigned n = _nodes;
    _addr_rows = gpu.allocator().alloc((n + 1) * 4);
    _addr_edges = gpu.allocator().alloc(
        static_cast<uint32_t>(_edges.size()) * 4);
    _addr_frontier = gpu.allocator().alloc(n * 4);
    _addr_updating = gpu.allocator().alloc(n * 4);
    _addr_visited = gpu.allocator().alloc(n * 4);
    _addr_cost = gpu.allocator().alloc(n * 4);

    gpu.memcpyToDevice(_addr_rows, _row_offsets.data(), (n + 1) * 4);
    gpu.memcpyToDevice(_addr_edges, _edges.data(), _edges.size() * 4);
    std::vector<uint32_t> zeros(n, 0);
    gpu.memcpyToDevice(_addr_updating, zeros.data(), n * 4);
    std::vector<uint32_t> cost(n, 0xffffffffu);
    cost[0] = 0;
    gpu.memcpyToDevice(_addr_cost, cost.data(), n * 4);
    std::vector<uint32_t> frontier(n, 0);
    frontier[0] = 1;
    gpu.memcpyToDevice(_addr_frontier, frontier.data(), n * 4);
    std::vector<uint32_t> visited(n, 0);
    visited[0] = 1;
    gpu.memcpyToDevice(_addr_visited, visited.data(), n * 4);

    // ---- bfs1: expand the frontier ----
    KernelBuilder b1("bfsKernel1", 14);
    emitGlobalTid(b1, 0);
    auto k1_end = b1.newLabel();
    // Bounds + frontier check.
    b1.setp(0, Cmp::GE, CmpType::U32, R(0), I(n));
    b1.braIf(0, false, k1_end, k1_end);
    b1.imad(1, R(0), I(4), I(_addr_frontier));
    b1.ldg(2, R(1));
    b1.setp(0, Cmp::EQ, CmpType::U32, R(2), I(0));
    b1.braIf(0, false, k1_end, k1_end);
    b1.stg(R(1), I(0));                       // frontier[n] = 0
    // my cost + 1
    b1.imad(3, R(0), I(4), I(_addr_cost));
    b1.ldg(4, R(3));
    b1.iadd(4, R(4), I(1));
    // edge range
    b1.imad(5, R(0), I(4), I(_addr_rows));
    b1.ldg(6, R(5));                          // start
    b1.ldg(7, R(5), 4);                       // end
    auto loop = b1.newLabel();
    auto loop_end = b1.newLabel();
    b1.bind(loop);
    b1.setp(1, Cmp::GE, CmpType::U32, R(6), R(7));
    b1.braIf(1, false, loop_end, loop_end);
    b1.imad(8, R(6), I(4), I(_addr_edges));
    b1.ldg(9, R(8));                          // dest node
    b1.imad(10, R(9), I(4), I(_addr_visited));
    b1.ldg(11, R(10));
    b1.setp(2, Cmp::EQ, CmpType::U32, R(11), I(0));
    b1.imad(12, R(9), I(4), I(_addr_cost));
    b1.pred(2).stg(R(12), R(4));
    b1.imad(13, R(9), I(4), I(_addr_updating));
    b1.pred(2).stg(R(13), I(1));
    b1.iadd(6, R(6), I(1));
    b1.jump(loop);
    b1.bind(loop_end);
    b1.bind(k1_end);
    b1.exit();

    // ---- bfs2: commit the updating set ----
    KernelBuilder b2("bfsKernel2", 8);
    emitGlobalTid(b2, 0);
    auto k2_end = b2.newLabel();
    b2.setp(0, Cmp::GE, CmpType::U32, R(0), I(n));
    b2.braIf(0, false, k2_end, k2_end);
    b2.imad(1, R(0), I(4), I(_addr_updating));
    b2.ldg(2, R(1));
    b2.setp(0, Cmp::EQ, CmpType::U32, R(2), I(0));
    b2.braIf(0, false, k2_end, k2_end);
    b2.stg(R(1), I(0));
    b2.imad(3, R(0), I(4), I(_addr_frontier));
    b2.stg(R(3), I(1));
    b2.imad(4, R(0), I(4), I(_addr_visited));
    b2.stg(R(4), I(1));
    b2.bind(k2_end);
    b2.exit();

    perf::KernelProgram p1 = b1.finish();
    perf::KernelProgram p2 = b2.finish();

    std::vector<KernelLaunch> seq;
    perf::LaunchConfig lc;
    lc.grid = {static_cast<unsigned>(divCeil(n, 256)), 1};
    lc.block = {256, 1};
    for (unsigned level = 0; level < _levels; ++level) {
        KernelLaunch k1;
        k1.label = "bfs1";
        k1.prog = p1;
        k1.launch = lc;
        seq.push_back(std::move(k1));
        KernelLaunch k2;
        k2.label = "bfs2";
        k2.prog = p2;
        k2.launch = lc;
        seq.push_back(std::move(k2));
    }
    return seq;
}

bool
Bfs::verify(perf::Gpu &gpu) const
{
    std::vector<uint32_t> cost(_nodes);
    gpu.memcpyToHost(cost.data(), _addr_cost, _nodes * 4);
    for (unsigned i = 0; i < _nodes; ++i) {
        if (cost[i] != _host_cost[i])
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
