/**
 * @file
 * CUDA-SDK vector workloads: vectoradd and scalarprod (Table I).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_SIMPLE_HH
#define GPUSIMPOW_WORKLOADS_WL_SIMPLE_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/** vectoradd: C = A + B, perfectly coalesced and memory bound. */
class VectorAdd : public Workload
{
  public:
    explicit VectorAdd(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _n;
    std::vector<float> _a;
    std::vector<float> _b;
    uint32_t _addr_a = 0;
    uint32_t _addr_b = 0;
    uint32_t _addr_c = 0;
};

/** scalarprod: per-block dot products with SMEM tree reduction. */
class ScalarProd : public Workload
{
  public:
    explicit ScalarProd(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _blocks;
    unsigned _chunk;
    std::vector<float> _a;
    std::vector<float> _b;
    uint32_t _addr_a = 0;
    uint32_t _addr_b = 0;
    uint32_t _addr_out = 0;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_SIMPLE_HH
