#include "workloads/microbench.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

namespace {

/** Emit the shared loop skeleton; body(b) emits the guarded body. */
template <typename BodyFn>
perf::KernelProgram
makeLoopKernel(const std::string &name, unsigned regs,
               unsigned iterations, unsigned enabled_lanes,
               uint32_t sink_addr, const BodyFn &body)
{
    KernelBuilder b(name, regs);
    // p0: lane participates in the measured body.
    b.mov(0, S(SpecialReg::LaneId));
    b.setp(0, Cmp::LT, CmpType::U32, R(0), I(enabled_lanes));
    // Seed from the global thread id (non-zero).
    emitGlobalTid(b, 1);
    b.iadd(1, R(1), I(1));
    b.mov(2, I(0));    // loop counter
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(1, Cmp::GE, CmpType::U32, R(2), I(iterations));
    b.braIf(1, false, done, done);
    body(b);
    b.iadd(2, R(2), I(1));
    b.jump(loop);
    b.bind(done);
    // Sink the result so the body is not trivially dead.
    emitGlobalTid(b, 3);
    b.imad(3, R(3), I(4), I(sink_addr));
    b.stg(R(3), R(1));
    b.exit();
    return b.finish();
}

} // namespace

perf::KernelProgram
makeIntMicrobench(unsigned iterations, unsigned enabled_lanes,
                  uint32_t sink_addr)
{
    GSP_ASSERT(enabled_lanes >= 1 && enabled_lanes <= 32,
               "enabled lanes out of range");
    return makeLoopKernel(
        "microInt", 8, iterations, enabled_lanes, sink_addr,
        [](KernelBuilder &b) {
            // Galois LFSR step, 5 INT ops, unrolled 8x; all body
            // instructions carry the lane guard p0.
            for (unsigned u = 0; u < 8; ++u) {
                b.pred(0).iand(4, R(1), I(1));
                b.pred(0).isub(5, I(0), R(4));
                b.pred(0).iand(5, R(5), I(0xB400));
                b.pred(0).ishr(1, R(1), I(1));
                b.pred(0).ixor(1, R(1), R(5));
            }
        });
}

perf::KernelProgram
makeFpMicrobench(unsigned iterations, unsigned enabled_lanes,
                 uint32_t sink_addr)
{
    GSP_ASSERT(enabled_lanes >= 1 && enabled_lanes <= 32,
               "enabled lanes out of range");
    KernelBuilder b("microFp", 12);
    b.mov(0, S(SpecialReg::LaneId));
    b.setp(0, Cmp::LT, CmpType::U32, R(0), I(enabled_lanes));
    emitGlobalTid(b, 1);
    // c = (cr, ci) derived from the thread id; z starts at c.
    b.i2f(4, R(1));
    b.fmul(4, R(4), F(1e-4f));
    b.fsub(4, R(4), F(0.7f));      // cr
    b.mov(5, F(0.27015f));         // ci
    b.mov(6, R(4));                // zr
    b.mov(7, R(5));                // zi
    b.mov(2, I(0));
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(1, Cmp::GE, CmpType::U32, R(2), I(iterations));
    b.braIf(1, false, done, done);
    for (unsigned u = 0; u < 8; ++u) {
        // z = z^2 + c: 6 FP ops per Mandelbrot step.
        b.pred(0).fmul(8, R(6), R(6));     // zr*zr
        b.pred(0).fmul(9, R(7), R(7));     // zi*zi
        b.pred(0).fmul(10, R(6), R(7));    // zr*zi
        b.pred(0).fsub(8, R(8), R(9));
        b.pred(0).fadd(6, R(8), R(4));     // zr'
        b.pred(0).ffma(7, R(10), F(2.0f), R(5)); // zi'
    }
    b.iadd(2, R(2), I(1));
    b.jump(loop);
    b.bind(done);
    emitGlobalTid(b, 3);
    b.imad(3, R(3), I(4), I(sink_addr));
    b.stg(R(3), R(6));
    b.exit();
    return b.finish();
}

perf::KernelProgram
makeOccupancyKernel(unsigned iterations, uint32_t sink_addr)
{
    return makeLoopKernel(
        "occupancy", 8, iterations, 32, sink_addr,
        [](KernelBuilder &b) {
            for (unsigned u = 0; u < 8; ++u) {
                b.pred(0).iand(4, R(1), I(1));
                b.pred(0).isub(5, I(0), R(4));
                b.pred(0).iand(5, R(5), I(0xB400));
                b.pred(0).ishr(1, R(1), I(1));
                b.pred(0).ixor(1, R(1), R(5));
            }
        });
}

} // namespace workloads
} // namespace gpusimpow
