/**
 * @file
 * mergesort: the four-kernel parallel merge sort of the CUDA SDK
 * (Table I lists 4 kernels; mergeSort3 is the short 1 ms kernel the
 * paper singles out as a measurement artifact).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_MERGESORT_HH
#define GPUSIMPOW_WORKLOADS_WL_MERGESORT_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/**
 * Four-stage parallel merge sort over 32-bit keys:
 *  - mergeSort1: per-block odd-even sort of chunks in shared memory
 *  - mergeSort2: sample-rank computation via binary search
 *  - mergeSort3: rank/index fixup (deliberately tiny, ~short runtime)
 *  - mergeSort4: elementary-interval merge of chunk pairs
 */
class MergeSort : public Workload
{
  public:
    explicit MergeSort(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _chunks;
    unsigned _chunk;   // keys per chunk (sorted by kernel 1)
    std::vector<uint32_t> _keys;
    uint32_t _addr_keys = 0;
    uint32_t _addr_ranks = 0;
    uint32_t _addr_limits = 0;
    uint32_t _addr_out = 0;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_MERGESORT_HH
