/**
 * @file
 * Compute-heavy CUDA-SDK workloads: matmul (tiled shared-memory
 * matrix multiply) and blackscholes (Black-Scholes PDE solver, the
 * power-profile example of Table V).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_COMPUTE_HH
#define GPUSIMPOW_WORKLOADS_WL_COMPUTE_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/** matmul: C = A x B with 16x16 shared-memory tiles. */
class MatMul : public Workload
{
  public:
    explicit MatMul(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _n;   // square matrix dimension
    std::vector<float> _a;
    std::vector<float> _b;
    uint32_t _addr_a = 0;
    uint32_t _addr_b = 0;
    uint32_t _addr_c = 0;
};

/** blackscholes: European option pricing, FP+SFU dominated. */
class BlackScholes : public Workload
{
  public:
    explicit BlackScholes(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

    /** Host reference for one option (also used by tests). */
    static void priceHost(float s, float x, float t, float r, float v,
                          float &call, float &put);

  private:
    unsigned _n;
    std::vector<float> _s;
    std::vector<float> _x;
    std::vector<float> _t;
    uint32_t _addr_s = 0;
    uint32_t _addr_x = 0;
    uint32_t _addr_t = 0;
    uint32_t _addr_call = 0;
    uint32_t _addr_put = 0;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_COMPUTE_HH
