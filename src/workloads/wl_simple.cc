/**
 * @file
 * The two CUDA-SDK vector workloads of Table I: vectoradd (addition
 * of two vectors) and scalarprod (scalar product with a per-block
 * shared-memory reduction).
 */

#include "workloads/wl_simple.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace gpusimpow {
namespace workloads {

// ----------------------------------------------------------------
// vectorAdd: C[i] = A[i] + B[i]. Perfectly coalesced, memory bound.
// ----------------------------------------------------------------

VectorAdd::VectorAdd(unsigned scale)
    : Workload("vectoradd"), _n(65536 * scale)
{
}

std::string
VectorAdd::description() const
{
    return "Addition of two vectors";
}

std::string
VectorAdd::origin() const
{
    return "CUDA SDK";
}

std::vector<KernelLaunch>
VectorAdd::prepare(perf::Gpu &gpu)
{
    _a = randomFloats(_n, 0xA0A0 + _n, -8.0f, 8.0f);
    _b = randomFloats(_n, 0xB0B0 + _n, -8.0f, 8.0f);
    _addr_a = gpu.allocator().alloc(_n * 4);
    _addr_b = gpu.allocator().alloc(_n * 4);
    _addr_c = gpu.allocator().alloc(_n * 4);
    gpu.memcpyToDevice(_addr_a, _a.data(), _n * 4);
    gpu.memcpyToDevice(_addr_b, _b.data(), _n * 4);

    KernelBuilder b("vectorAdd", 8);
    emitGlobalTid(b, 0);
    // Grid-stride loop so any launch geometry covers all elements.
    auto loop = b.newLabel();
    auto done = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(0), I(_n));
    b.braIf(0, false, done, done);
    b.imad(1, R(0), I(4), I(_addr_a));
    b.ldg(2, R(1));
    b.imad(3, R(0), I(4), I(_addr_b));
    b.ldg(4, R(3));
    b.fadd(5, R(2), R(4));
    b.imad(6, R(0), I(4), I(_addr_c));
    b.stg(R(6), R(5));
    b.imul(7, S(SpecialReg::NTidX), S(SpecialReg::NCtaIdX));
    b.iadd(0, R(0), R(7));
    b.jump(loop);
    b.bind(done);
    b.exit();

    KernelLaunch launch;
    launch.label = "vectorAdd";
    launch.prog = b.finish();
    launch.launch.grid = {64, 1};
    launch.launch.block = {256, 1};
    return {std::move(launch)};
}

bool
VectorAdd::verify(perf::Gpu &gpu) const
{
    std::vector<float> c(_n);
    gpu.memcpyToHost(c.data(), _addr_c, _n * 4);
    for (size_t i = 0; i < _n; ++i) {
        if (!closeEnough(c[i], _a[i] + _b[i], 1e-6f))
            return false;
    }
    return true;
}

// ----------------------------------------------------------------
// scalarProd: per-block dot product over a chunk, shared-memory
// tree reduction with divergent guard branches.
// ----------------------------------------------------------------

ScalarProd::ScalarProd(unsigned scale)
    : Workload("scalarprod"), _blocks(64), _chunk(2048 * scale)
{
}

std::string
ScalarProd::description() const
{
    return "Scalar product of two vectors";
}

std::string
ScalarProd::origin() const
{
    return "CUDA SDK";
}

std::vector<KernelLaunch>
ScalarProd::prepare(perf::Gpu &gpu)
{
    const unsigned n = _blocks * _chunk;
    const unsigned threads = 256;
    _a = randomFloats(n, 0x51CA, -1.0f, 1.0f);
    _b = randomFloats(n, 0x52CB, -1.0f, 1.0f);
    _addr_a = gpu.allocator().alloc(n * 4);
    _addr_b = gpu.allocator().alloc(n * 4);
    _addr_out = gpu.allocator().alloc(_blocks * 4);
    gpu.memcpyToDevice(_addr_a, _a.data(), n * 4);
    gpu.memcpyToDevice(_addr_b, _b.data(), n * 4);

    KernelBuilder b("scalarProd", 12, threads * 4);
    // r0 = tid, r1 = chunk base element, r2 = running index
    b.mov(0, S(SpecialReg::TidX));
    b.imul(1, S(SpecialReg::CtaIdX), I(_chunk));
    b.iadd(2, R(1), R(0));
    b.iadd(3, R(1), I(_chunk));       // chunk end
    b.mov(4, F(0.0f));                // accumulator
    auto loop = b.newLabel();
    auto loop_end = b.newLabel();
    b.bind(loop);
    b.setp(0, Cmp::GE, CmpType::U32, R(2), R(3));
    b.braIf(0, false, loop_end, loop_end);
    b.imad(5, R(2), I(4), I(_addr_a));
    b.ldg(6, R(5));
    b.imad(7, R(2), I(4), I(_addr_b));
    b.ldg(8, R(7));
    b.ffma(4, R(6), R(8), R(4));
    b.iadd(2, R(2), I(threads));
    b.jump(loop);
    b.bind(loop_end);

    // smem[tid] = partial; tree reduction.
    b.imul(9, R(0), I(4));
    b.sts(R(9), R(4));
    b.bar();
    for (unsigned stride = threads / 2; stride > 0; stride /= 2) {
        auto skip = b.newLabel();
        b.setp(1, Cmp::GE, CmpType::U32, R(0), I(stride));
        b.braIf(1, false, skip, skip);
        b.lds(10, R(9));
        b.lds(11, R(9), static_cast<int32_t>(stride * 4));
        b.fadd(10, R(10), R(11));
        b.sts(R(9), R(10));
        b.bind(skip);
        b.bar();
    }
    // Thread 0 writes the block result.
    auto no_write = b.newLabel();
    b.setp(2, Cmp::NE, CmpType::U32, R(0), I(0));
    b.braIf(2, false, no_write, no_write);
    b.lds(10, I(0));
    b.imad(5, S(SpecialReg::CtaIdX), I(4), I(_addr_out));
    b.stg(R(5), R(10));
    b.bind(no_write);
    b.exit();

    KernelLaunch launch;
    launch.label = "scalarProd";
    launch.prog = b.finish();
    launch.launch.grid = {_blocks, 1};
    launch.launch.block = {threads, 1};
    return {std::move(launch)};
}

bool
ScalarProd::verify(perf::Gpu &gpu) const
{
    std::vector<float> out(_blocks);
    gpu.memcpyToHost(out.data(), _addr_out, _blocks * 4);
    for (unsigned blk = 0; blk < _blocks; ++blk) {
        // Reproduce the device summation order: per-thread strided
        // partials, then a pairwise tree.
        const unsigned threads = 256;
        std::vector<float> partial(threads, 0.0f);
        for (unsigned t = 0; t < threads; ++t) {
            for (unsigned i = blk * _chunk + t; i < (blk + 1) * _chunk;
                 i += threads) {
                partial[t] = _a[i] * _b[i] + partial[t];
            }
        }
        for (unsigned stride = threads / 2; stride > 0; stride /= 2)
            for (unsigned t = 0; t < stride; ++t)
                partial[t] += partial[t + stride];
        if (!closeEnough(out[blk], partial[0], 1e-3f))
            return false;
    }
    return true;
}

} // namespace workloads
} // namespace gpusimpow
