/**
 * @file
 * The measurement microbenchmarks of SectionIII-D: an LFSR integer
 * loop and a Mandelbrot floating-point loop whose bodies execute on
 * a configurable number of enabled lanes per warp (31 vs 1 in the
 * paper) while loop control runs on all lanes — so both variants
 * have identical execution time and their energy difference isolates
 * the execution units. Also the steady occupancy kernel behind the
 * Fig. 4 cluster-power staircase.
 */

#ifndef GPUSIMPOW_WORKLOADS_MICROBENCH_HH
#define GPUSIMPOW_WORKLOADS_MICROBENCH_HH

#include "perf/kernel.hh"

namespace gpusimpow {
namespace workloads {

/** Guarded body operations emitted per loop iteration (INT). */
constexpr unsigned int_body_ops_per_iter = 40;   // 5 ops x 8 unroll
/** Guarded body operations emitted per loop iteration (FP). */
constexpr unsigned fp_body_ops_per_iter = 48;    // 6 ops x 8 unroll

/**
 * Linear-feedback-shift-register integer loop.
 * @param iterations loop trip count (per thread)
 * @param enabled_lanes lanes per warp executing the guarded body
 * @param sink_addr global address for the result sink
 */
perf::KernelProgram makeIntMicrobench(unsigned iterations,
                                      unsigned enabled_lanes,
                                      uint32_t sink_addr);

/** Mandelbrot-iteration floating-point loop (same structure). */
perf::KernelProgram makeFpMicrobench(unsigned iterations,
                                     unsigned enabled_lanes,
                                     uint32_t sink_addr);

/**
 * Steady compute kernel for the occupancy staircase of Fig. 4 (all
 * lanes enabled; INT mix).
 */
perf::KernelProgram makeOccupancyKernel(unsigned iterations,
                                        uint32_t sink_addr);

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_MICROBENCH_HH
