/**
 * @file
 * Rodinia grid workloads: hotspot (processor temperature stencil)
 * and pathfinder (dynamic-programming path search).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_STENCIL_HH
#define GPUSIMPOW_WORKLOADS_WL_STENCIL_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/** hotspot: 5-point temperature stencil with boundary divergence. */
class Hotspot : public Workload
{
  public:
    explicit Hotspot(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _dim;      // square grid dimension
    unsigned _steps;    // time steps (kernel launches)
    std::vector<float> _temp;
    std::vector<float> _power;
    uint32_t _addr_t_in = 0;
    uint32_t _addr_t_out = 0;
    uint32_t _addr_p = 0;
};

/** pathfinder: row-wise DP minimum path with SMEM row buffers. */
class Pathfinder : public Workload
{
  public:
    explicit Pathfinder(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    unsigned _cols;
    unsigned _rows;
    std::vector<uint32_t> _wall;
    uint32_t _addr_wall = 0;
    uint32_t _addr_src = 0;
    uint32_t _addr_dst = 0;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_STENCIL_HH
