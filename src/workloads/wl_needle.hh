/**
 * @file
 * needle: Needleman-Wunsch sequence alignment (Rodinia), the
 * two-kernel wavefront workload of Fig. 6 (needle1/needle2).
 */

#ifndef GPUSIMPOW_WORKLOADS_WL_NEEDLE_HH
#define GPUSIMPOW_WORKLOADS_WL_NEEDLE_HH

#include <vector>

#include "workloads/workload.hh"

namespace gpusimpow {
namespace workloads {

/**
 * Tile-wavefront Needleman-Wunsch: needle1 sweeps the upper-left
 * tile diagonals, needle2 the lower-right ones. Inside a tile, 16
 * threads advance an internal wavefront with barriers — heavily
 * divergent and barrier-bound, matching the Rodinia kernel.
 */
class Needle : public Workload
{
  public:
    explicit Needle(unsigned scale = 1);
    std::string description() const override;
    std::string origin() const override;
    std::vector<KernelLaunch> prepare(perf::Gpu &gpu) override;
    bool verify(perf::Gpu &gpu) const override;

  private:
    static constexpr unsigned tile = 16;
    static constexpr int penalty = 10;

    unsigned _n;   // sequence length (multiple of tile)
    std::vector<int32_t> _ref;     // n x n similarity matrix
    uint32_t _addr_ref = 0;
    uint32_t _addr_score = 0;      // (n+1) x (n+1) DP matrix

    perf::KernelProgram buildKernel(unsigned diag, bool second_half)
        const;
};

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WL_NEEDLE_HH
