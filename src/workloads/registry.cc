/**
 * @file
 * Workload registry: constructs the full Table I benchmark set (plus
 * needle) and exposes the Fig. 6 kernel ordering.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/wl_compute.hh"
#include "workloads/wl_graph.hh"
#include "workloads/wl_learning.hh"
#include "workloads/wl_mergesort.hh"
#include "workloads/wl_needle.hh"
#include "workloads/wl_simple.hh"
#include "workloads/wl_stencil.hh"

namespace gpusimpow {
namespace workloads {

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(unsigned scale)
{
    std::vector<std::unique_ptr<Workload>> all;
    all.push_back(std::make_unique<Backprop>(scale));
    all.push_back(std::make_unique<Heartwall>(scale));
    all.push_back(std::make_unique<Kmeans>(scale));
    all.push_back(std::make_unique<Pathfinder>(scale));
    all.push_back(std::make_unique<Bfs>(scale));
    all.push_back(std::make_unique<Hotspot>(scale));
    all.push_back(std::make_unique<MatMul>(scale));
    all.push_back(std::make_unique<BlackScholes>(scale));
    all.push_back(std::make_unique<MergeSort>(scale));
    all.push_back(std::make_unique<ScalarProd>(scale));
    all.push_back(std::make_unique<VectorAdd>(scale));
    all.push_back(std::make_unique<Needle>(scale));
    return all;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned scale)
{
    for (auto &w : makeAllWorkloads(scale)) {
        if (w->name() == name)
            return std::move(w);
    }
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
listWorkloadNames()
{
    std::vector<std::string> names;
    for (auto &w : makeAllWorkloads())
        names.push_back(w->name());
    return names;
}

std::vector<std::string>
figure6KernelOrder()
{
    return {
        "backprop1", "backprop2", "bfs1", "bfs2", "BlackScholes",
        "heartwall", "hotspot", "kmeans1", "kmeans2", "matrixMul",
        "mergeSort1", "mergeSort2", "mergeSort3", "mergeSort4",
        "needle1", "needle2", "pathfinder", "scalarProd", "vectorAdd",
    };
}

} // namespace workloads
} // namespace gpusimpow
