/**
 * @file
 * Benchmark workload interface. Each workload mirrors one benchmark
 * of Table I of the paper (plus needle, which appears in Fig. 6):
 * it sets up device memory, returns the kernel launch sequence with
 * the paper's kernel naming (backprop1, backprop2, ...), and can
 * verify the device results against a host reference — so the
 * functional correctness of the simulator is checked by every
 * benchmark run.
 */

#ifndef GPUSIMPOW_WORKLOADS_WORKLOAD_HH
#define GPUSIMPOW_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "perf/gpu.hh"
#include "perf/kernel.hh"

namespace gpusimpow {
namespace workloads {

/** One kernel plus its launch geometry, tagged with the Fig. 6 name. */
struct KernelLaunch
{
    /** Bar label used by the paper ("mergeSort3", "bfs1", ...). */
    std::string label;
    perf::KernelProgram prog;
    perf::LaunchConfig launch;
    /**
     * False for kernels that process data in place and cannot simply
     * be re-run for measurement (the paper's mergeSort3: too short to
     * measure reliably and "could not easily be changed to call it
     * multiple times").
     */
    bool repeatable = true;
};

/** A benchmark: memory setup + kernel sequence + verification. */
class Workload
{
  public:
    explicit Workload(std::string name) : _name(std::move(name)) {}
    virtual ~Workload() = default;

    /** Benchmark name (Table I first column). */
    const std::string &name() const { return _name; }

    /** One-line description (Table I third column). */
    virtual std::string description() const = 0;

    /** Origin suite (Table I fourth column). */
    virtual std::string origin() const = 0;

    /**
     * Upload inputs and build the kernel sequence. Kernels must be
     * run in order; repeated kernels share a label.
     */
    virtual std::vector<KernelLaunch> prepare(perf::Gpu &gpu) = 0;

    /** Check device results against the host reference. */
    virtual bool verify(perf::Gpu &gpu) const = 0;

  private:
    std::string _name;
};

/**
 * Construct every benchmark of the evaluation (Table I order plus
 * needle).
 * @param scale problem-size multiplier (1 = laptop-scale defaults)
 */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads(unsigned scale = 1);

/** Construct one benchmark by Table I name; fatal() if unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned scale = 1);

/** Names of every registered benchmark, in Table I order. */
std::vector<std::string> listWorkloadNames();

/** The 19 kernel labels in Fig. 6 bar order. */
std::vector<std::string> figure6KernelOrder();

} // namespace workloads
} // namespace gpusimpow

#endif // GPUSIMPOW_WORKLOADS_WORKLOAD_HH
