#include "sim/snapshot.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/trace.hh"

namespace gpusimpow {

namespace {

/** Format-compatibility tag; bump on any layout change. */
constexpr const char *snapshot_magic = "gpusimpow-activity-snapshot";
constexpr unsigned snapshot_version = 1;

/** Sanity bound on serialized counts (kernels, samples): keeps a
 *  corrupted record inside the malformed-record fatal() contract
 *  instead of feeding reserve() an absurd size. */
constexpr uint64_t max_record_count = 1u << 20;

uint64_t
readCount(std::istream &in, const char *context)
{
    uint64_t n = readU64Token(in, context);
    if (n > max_record_count)
        fatal("malformed record: implausible ", context, " ", n);
    return n;
}

/** Read a time-like quantity: a finite non-negative double. NaN,
 *  infinities, and negative spans are corruption — and they would
 *  silently poison every downstream duration and rate. */
double
readTimeToken(std::istream &in, const char *context)
{
    double v = readDoubleToken(in, context);
    if (!std::isfinite(v) || v < 0.0)
        fatal("malformed record: ", context, " ", v,
              " is not a finite non-negative time");
    return v;
}

/** Labels are serialized as the remainder of their line, so kernel
 *  names with unusual characters survive unharmed. */
std::string
readLabelLine(std::istream &in)
{
    std::string rest;
    std::getline(in, rest);
    return trim(rest);
}

void
serializeSample(std::ostream &out, const ActivitySample &s)
{
    out << "sample " << strformat("%a %a", s.t0, s.t1) << '\n';
    s.delta.serialize(out);
}

ActivitySample
parseSample(std::istream &in)
{
    ActivitySample s;
    expectToken(in, "sample");
    s.t0 = readTimeToken(in, "sample t0");
    s.t1 = readTimeToken(in, "sample t1");
    if (s.t1 < s.t0)
        fatal("malformed record: sample interval runs backwards "
              "(t0 ", s.t0, ", t1 ", s.t1, ")");
    s.delta = perf::ChipActivity::parse(in);
    return s;
}

void
serializeKernel(std::ostream &out, const KernelSnapshot &k)
{
    out << "kernel " << k.label << '\n';
    out << "flags " << (k.repeatable ? 1 : 0) << ' '
        << (k.with_trace ? 1 : 0) << '\n';
    out << "perf " << k.perf.cycles << ' ' << k.perf.instructions
        << ' ' << strformat("%a", k.perf.time_s) << '\n';
    k.perf.activity.serialize(out);
    out << "samples " << k.samples.size() << '\n';
    for (const ActivitySample &s : k.samples)
        serializeSample(out, s);
}

KernelSnapshot
parseKernel(std::istream &in)
{
    KernelSnapshot k;
    expectToken(in, "kernel");
    k.label = readLabelLine(in);
    expectToken(in, "flags");
    k.repeatable = readFlagToken(in, "repeatable flag");
    k.with_trace = readFlagToken(in, "with_trace flag");
    expectToken(in, "perf");
    k.perf.cycles = readU64Token(in, "cycles");
    k.perf.instructions = readU64Token(in, "instructions");
    k.perf.time_s = readTimeToken(in, "time_s");
    k.perf.activity = perf::ChipActivity::parse(in);
    expectToken(in, "samples");
    uint64_t n_samples = readCount(in, "sample count");
    k.samples.reserve(n_samples);
    for (uint64_t i = 0; i < n_samples; ++i)
        k.samples.push_back(parseSample(in));
    return k;
}

/** Everything after the magic/version check; split out so parse()
 *  can annotate any fatal() with the stream position. */
ActivitySnapshot
parseBody(std::istream &in)
{
    ActivitySnapshot snap;
    expectToken(in, "workload");
    snap.workload = readLabelLine(in);
    expectToken(in, "scale");
    snap.scale = readU32Token(in, "scale");
    expectToken(in, "with_trace");
    snap.with_trace = readFlagToken(in, "with_trace flag");
    expectToken(in, "sample_interval_s");
    snap.sample_interval_s =
        readTimeToken(in, "sample_interval_s");
    // An untraced snapshot legitimately carries no sampling period,
    // but a traced one sampled at 0 could never have produced its
    // samples — reject the contradiction.
    if (snap.with_trace && snap.sample_interval_s <= 0.0)
        fatal("malformed record: traced snapshot requires "
              "sample_interval_s > 0, got ", snap.sample_interval_s);
    expectToken(in, "verified");
    snap.verified = readFlagToken(in, "verified flag");
    expectToken(in, "kernels");
    uint64_t n_kernels = readCount(in, "kernel count");
    snap.kernels.reserve(n_kernels);
    for (uint64_t i = 0; i < n_kernels; ++i)
        snap.kernels.push_back(parseKernel(in));
    return snap;
}

} // namespace

std::string
ActivitySnapshot::serialize() const
{
    GSP_TRACE_SPAN("snapshot/serialize");
    std::ostringstream out;
    out << snapshot_magic << " v" << snapshot_version << '\n';
    out << "workload " << workload << '\n';
    out << "scale " << scale << '\n';
    out << "with_trace " << (with_trace ? 1 : 0) << '\n';
    out << "sample_interval_s " << strformat("%a", sample_interval_s)
        << '\n';
    out << "verified " << (verified ? 1 : 0) << '\n';
    out << "kernels " << kernels.size() << '\n';
    for (const KernelSnapshot &k : kernels)
        serializeKernel(out, k);
    return out.str();
}

ActivitySnapshot
ActivitySnapshot::parse(const std::string &text)
{
    GSP_TRACE_SPAN("snapshot/parse");
    std::istringstream in(text);
    try {
        expectToken(in, snapshot_magic);
        std::string version = readToken(in, "snapshot version");
        // Built with += rather than operator+ to sidestep gcc 12's
        // spurious -Wrestrict on the inlined concatenation
        // (PR105329).
        std::string expected = "v";
        expected += std::to_string(snapshot_version);
        if (version != expected)
            fatal("unsupported snapshot version '", version,
                  "' (this build reads ", expected, ")");
        return parseBody(in);
    } catch (const FatalError &e) {
        // Re-throw with the stream position, so a corrupt store
        // entry (or hand-edited snapshot) is diagnosable: a failed
        // token read leaves the stream consumed up to the offending
        // token, which maps to a line/column in the text.
        in.clear(); // a failed extraction poisons tellg()
        std::streamoff off = in.tellg();
        std::size_t offset =
            off < 0 ? text.size()
                    : std::min(static_cast<std::size_t>(off),
                               text.size());
        std::size_t line = 1;
        for (std::size_t i = 0; i < offset; ++i)
            if (text[i] == '\n')
                ++line;
        std::size_t line_start =
            offset == 0 ? 0 : text.rfind('\n', offset - 1);
        line_start =
            line_start == std::string::npos ? 0 : line_start + 1;
        fatal(e.what(), " (snapshot text, line ", line, ", column ",
              offset - line_start + 1, ", byte offset ", offset, ")");
    }
}

} // namespace gpusimpow
