#include "sim/engine.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/batched.hh"
#include "workloads/workload.hh"

namespace gpusimpow {
namespace sim {

namespace {

/** Fold one finished kernel into a scenario's running totals —
 *  shared by the full-simulation and replay paths so their
 *  accounting cannot drift. */
void
accumulateKernel(ScenarioResult &result, const std::string &label,
                 bool repeatable, KernelRun run)
{
    double card_w = run.report.totalPower() + run.report.dram_w;
    result.time_s += run.perf.time_s;
    result.energy_j += card_w * run.perf.time_s;
    if (run.thermal.enabled) {
        result.thermal = true;
        result.t_max_k = std::max(result.t_max_k, run.thermal.t_max_k);
        result.throttled |= run.thermal.throttled;
        result.thermal_converged &= run.thermal.converged;
        result.min_freq_scale =
            std::min(result.min_freq_scale, run.thermal.op.freq_scale);
    }
    result.kernels.push_back({label, repeatable, std::move(run)});
}

/** Power-model-derived scenario summary columns. */
void
finalizeScenario(ScenarioResult &result, const Simulator &simulator)
{
    result.avg_power_w =
        result.time_s > 0.0 ? result.energy_j / result.time_s : 0.0;
    result.static_w = simulator.powerModel().staticPower();
    result.area_mm2 = simulator.powerModel().area();
    result.vdd = simulator.powerModel().techNode().vdd;
    result.shader_hz = result.scenario.config.clocks.shaderHz();
}

/**
 * Replay one batched work unit from `snapshot`, starting at member
 * index `first`: first == 1 when unit[0] was just captured (and
 * published) by the caller, first == 0 when the snapshot came from an
 * external source (EngineOptions::snapshot_source) and every member
 * replays. All replayed members are power-only variants of the same
 * timing fingerprint. Traced snapshots evaluate all variants'
 * intervals together through the batched matrix evaluator (kernels
 * outer, variants inner: each kernel's activity matrix is packed once
 * and multiplied against the whole coefficient stack); untraced
 * snapshots fall back to the scalar whole-kernel replay per variant,
 * where there is no interval loop to batch.
 */
template <typename Publish>
void
replayGroup(const SimulationEngine &engine,
            const std::vector<Scenario> &scenarios,
            const std::vector<std::size_t> &unit, std::size_t first,
            const ActivitySnapshot &snapshot,
            power::BatchedPowerEvaluator::Workspace &batch_ws,
            Publish &&publish, std::atomic<std::size_t> &replayed)
{
    // Registered (with descriptions) by run() before any worker can
    // get here; these lookups just cache the stable references.
    static obs::Counter &c_replayed =
        obs::Registry::instance().counter("engine/scenarios_replayed");
    static obs::Counter &c_builds =
        obs::Registry::instance().counter("engine/simulator_builds");

    if (!snapshot.with_trace) {
        for (std::size_t k = first; k < unit.size(); ++k) {
            const Scenario &variant = scenarios[unit[k]];
            Simulator sim(variant.config);
            c_builds.add(1);
            publish(engine.replayScenario(variant, snapshot, sim));
            replayed.fetch_add(1);
            c_replayed.add(1);
        }
        return;
    }

    // One Simulator per variant: their compiled power models are the
    // coefficient stack, and each carries its own thermal state
    // across the snapshot's kernels, exactly like a scalar replay.
    const std::size_t n_variants = unit.size() - first;
    std::vector<const Scenario *> variants;
    std::vector<std::unique_ptr<Simulator>> sims;
    variants.reserve(n_variants);
    sims.reserve(n_variants);
    bool want_blocks = false;
    for (std::size_t k = first; k < unit.size(); ++k) {
        variants.push_back(&scenarios[unit[k]]);
        sims.push_back(
            std::make_unique<Simulator>(variants.back()->config));
        c_builds.add(1);
        // The thermal trace march consumes per-block splits.
        want_blocks |= variants.back()->config.thermal.enabled;
    }
    std::vector<const power::CompiledPowerModel *> models;
    models.reserve(n_variants);
    for (const auto &sim : sims)
        models.push_back(&sim->powerModel().compiled());
    power::BatchedPowerEvaluator evaluator(std::move(models));

    std::vector<ScenarioResult> results(n_variants);
    for (std::size_t j = 0; j < n_variants; ++j) {
        results[j].scenario = *variants[j];
        results[j].kernels.reserve(snapshot.kernels.size());
        results[j].min_freq_scale =
            variants[j]->config.clocks.freq_scale;
    }

    std::vector<const perf::ChipActivity *> acts;
    std::vector<power::BatchedKernelPower> pre;
    for (const KernelSnapshot &snap : snapshot.kernels) {
        bool use_batch = snap.with_trace && !snap.samples.empty();
        if (use_batch) {
            acts.clear();
            acts.reserve(snap.samples.size());
            for (const ActivitySample &a : snap.samples)
                acts.push_back(&a.delta);
            evaluator.evaluate(acts, want_blocks, batch_ws, pre);
        }
        for (std::size_t j = 0; j < n_variants; ++j) {
            accumulateKernel(
                results[j], snap.label, snap.repeatable,
                sims[j]->replayKernel(snap,
                                      use_batch ? &pre[j] : nullptr));
        }
    }

    for (std::size_t j = 0; j < n_variants; ++j) {
        finalizeScenario(results[j], *sims[j]);
        // Verification reads device memory — a timing-phase output
        // the snapshot already carries (same as replayScenario).
        results[j].verified = true;
        if (variants[j]->verify && !results[j].kernels.empty())
            results[j].verified = snapshot.verified;
        publish(std::move(results[j]));
        replayed.fetch_add(1);
        c_replayed.add(1);
    }
}

} // namespace

void
EngineOptions::validate() const
{
    if (jobs > max_jobs)
        fatal("EngineOptions: jobs ", jobs, " exceeds the worker cap ",
              max_jobs);
    if (!(sample_interval_s > 0.0))
        fatal("EngineOptions: sample_interval_s ", sample_interval_s,
              " must be > 0; a non-positive period records an empty "
              "waveform");
    if ((snapshot_source || snapshot_sink) && !memoize)
        fatal("EngineOptions: snapshot_source/snapshot_sink require "
              "memoize — an external snapshot provider can only feed "
              "the memoized replay path");
}

SimulationEngine::SimulationEngine(EngineOptions options)
    : _options(std::move(options))
{
    _options.validate();
    _jobs = _options.jobs;
    if (_jobs == 0) {
        _jobs = std::thread::hardware_concurrency();
        if (_jobs == 0)
            _jobs = 1;
    }
}

ScenarioResult
SimulationEngine::runScenario(const Scenario &scenario) const
{
    Simulator simulator(scenario.config);
    return runScenario(scenario, simulator);
}

ScenarioResult
SimulationEngine::runScenario(const Scenario &scenario,
                              Simulator &simulator) const
{
    return runScenario(scenario, simulator, nullptr);
}

ScenarioResult
SimulationEngine::runScenario(const Scenario &scenario,
                              Simulator &simulator,
                              ActivitySnapshot *capture) const
{
    // A governed scenario cannot be replayed, so capturing one would
    // only poison the cache; drop the request instead.
    if (capture && !scenario.replayable())
        capture = nullptr;

    ScenarioResult result;
    result.scenario = scenario;

    auto workload =
        workloads::makeWorkload(scenario.workload, scenario.scale);
    auto launches = workload->prepare(simulator.gpu());

    if (capture) {
        capture->workload = scenario.workload;
        capture->scale = scenario.scale;
        capture->with_trace = _options.with_trace;
        capture->sample_interval_s = _options.sample_interval_s;
        capture->kernels.reserve(launches.size());
    }
    result.kernels.reserve(launches.size());
    result.min_freq_scale = scenario.config.clocks.freq_scale;
    for (const workloads::KernelLaunch &kl : launches) {
        KernelRun run;
        if (capture) {
            // Two-phase explicitly: the captured snapshot feeds the
            // same replay the cache hits will take, so a memoized
            // result is bit-identical by construction.
            KernelSnapshot snap = simulator.capturePerf(
                kl.prog, kl.launch, _options.with_trace,
                _options.sample_interval_s);
            snap.label = kl.label;
            snap.repeatable = kl.repeatable;
            run = simulator.replayKernel(snap);
            capture->kernels.push_back(std::move(snap));
        } else {
            run = simulator.runKernel(kl.prog, kl.launch,
                                      _options.with_trace,
                                      _options.sample_interval_s,
                                      kl.repeatable);
        }
        accumulateKernel(result, kl.label, kl.repeatable,
                         std::move(run));
    }
    finalizeScenario(result, simulator);
    result.verified = true;
    if (scenario.verify && !result.kernels.empty())
        result.verified = workload->verify(simulator.gpu());
    if (capture)
        capture->verified = result.verified;
    return result;
}

ScenarioResult
SimulationEngine::replayScenario(const Scenario &scenario,
                                 const ActivitySnapshot &snapshot,
                                 Simulator &simulator) const
{
    ScenarioResult result;
    result.scenario = scenario;
    result.kernels.reserve(snapshot.kernels.size());
    result.min_freq_scale = scenario.config.clocks.freq_scale;
    for (const KernelSnapshot &snap : snapshot.kernels)
        accumulateKernel(result, snap.label, snap.repeatable,
                         simulator.replayKernel(snap));
    finalizeScenario(result, simulator);
    // Verification reads device memory — a timing-phase output the
    // snapshot already carries.
    result.verified = true;
    if (scenario.verify && !result.kernels.empty())
        result.verified = snapshot.verified;
    return result;
}

SweepResult
SimulationEngine::run(const SweepSpec &spec) const
{
    GSP_TRACE_SPAN("engine/run");
    const uint64_t t_run0 = obs::monotonicNs();

    // Register every engine-level instrument up front so a metrics
    // dump always carries the full key set — a counter whose path
    // never ran reads 0 instead of being absent.
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &c_scenarios = reg.counter(
        "engine/scenarios", "scenarios completed by engine runs");
    obs::Counter &c_captured = reg.counter(
        "engine/scenarios_captured",
        "scenarios that ran timing and captured a snapshot");
    obs::Counter &c_replayed = reg.counter(
        "engine/scenarios_replayed",
        "scenarios replayed from a memoized snapshot");
    obs::Counter &c_governed = reg.counter(
        "engine/scenarios_governed",
        "scenarios pinned to full simulation by the governor");
    obs::Counter &c_cache_hit = reg.counter(
        "engine/snapshot_cache_hit",
        "ungrouped-schedule snapshot cache hits");
    obs::Counter &c_cache_miss = reg.counter(
        "engine/snapshot_cache_miss",
        "ungrouped-schedule snapshot cache misses");
    obs::Counter &c_insert_race = reg.counter(
        "engine/snapshot_cache_insert_race",
        "snapshot captures discarded because another worker "
        "published the key first");
    obs::Counter &c_batch_groups = reg.counter(
        "engine/batch_groups",
        "batched replay groups (work units with replay members)");
    obs::Counter &c_builds = reg.counter(
        "engine/simulator_builds",
        "Simulator constructions on behalf of the engine");
    obs::Counter &c_recycles = reg.counter(
        "engine/simulator_recycles",
        "scenarios served by recycling a worker's Simulator");
    obs::Counter &c_busy = reg.counter(
        "engine/worker_busy_ns", "worker time spent inside work units");
    obs::Counter &c_idle = reg.counter(
        "engine/worker_idle_ns",
        "worker lifetime not spent inside work units");
    obs::Histogram &h_group_size = reg.histogram(
        "engine/batch_group_size",
        "work-unit sizes of the grouped (batch replay) schedule");

    // Telemetry meters its own window of the process-wide registry.
    const obs::MetricsSnapshot metrics_before = reg.snapshot();

    std::vector<Scenario> scenarios = spec.expand();
    SweepResult table(scenarios.size());
    if (scenarios.empty())
        return table; // nothing to do; spawn no workers

    std::size_t total = scenarios.size();

    // Governor-pinned scenarios are a property of the spec, not of
    // scheduling — count them up front.
    std::size_t governed = 0;
    for (const Scenario &s : scenarios)
        if (!s.replayable())
            ++governed;
    c_governed.add(governed);

    // Work units the pool pulls from. With batched group replay each
    // timing-unique Scenario::snapshotKey() becomes one unit: its
    // first scenario captures the snapshot, every other member
    // replays through the batched matrix evaluator. Otherwise every
    // scenario is its own unit and memoization (when on) goes
    // through the cross-worker snapshot cache below. Grouping also
    // removes that cache's duplicated-capture race: exactly one
    // worker ever simulates a key.
    const bool grouped = _options.memoize && _options.batch_replay;
    std::vector<std::vector<std::size_t>> units;
    units.reserve(total);
    if (grouped) {
        // lint: unordered-ok(lookup/emplace only, never iterated;
        // unit membership order comes from the ascending scenario
        // index loop below, so hash order cannot reach results)
        std::unordered_map<std::string, std::size_t> unit_of;
        for (std::size_t i = 0; i < total; ++i) {
            if (!scenarios[i].replayable()) {
                units.push_back({i});
                continue;
            }
            auto ins = unit_of.emplace(scenarios[i].snapshotKey(),
                                       units.size());
            if (ins.second)
                units.emplace_back();
            units[ins.first->second].push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < total; ++i)
            units.push_back({i});
    }

    if (grouped) {
        for (const auto &unit : units) {
            h_group_size.record(unit.size());
            if (unit.size() > 1)
                c_batch_groups.add(1);
        }
    }

    unsigned workers = _jobs;
    if (static_cast<std::size_t>(workers) > units.size())
        workers = static_cast<unsigned>(units.size());

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> replayed{0};
    std::atomic<std::size_t> captured{0};
    std::mutex progress_mutex;

    // Cross-worker snapshot cache for the ungrouped schedule, scoped
    // to this run (engine options are uniform within it, so
    // with_trace/sampling never split the key). The first scenario
    // of each snapshotKey() publishes its phase-1 snapshot; everyone
    // after replays it. Two workers racing on the same key both
    // simulate — wasted work, never wrong — and the first insert
    // wins. shared_ptr<const> lets replayers read while the map
    // keeps growing. Unused when grouping already made each key a
    // single unit.
    std::mutex snapshot_mutex;
    // lint: unordered-ok(per-key find/emplace only, never iterated;
    // results publish into index-addressed SweepResult slots, so the
    // cache's hash order cannot reach output ordering)
    std::unordered_map<std::string,
                       std::shared_ptr<const ActivitySnapshot>>
        snapshots;

    // First-by-index exception: deterministic regardless of which
    // worker hit it or how completion interleaved.
    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    auto worker_loop = [&](unsigned worker_id) {
        // One trace track per worker. No-op while tracing is off.
        obs::Tracer::instance().labelThread(
            strformat("worker-%u", worker_id));
        const uint64_t t_worker0 = obs::monotonicNs();
        uint64_t busy_ns = 0;

        // Per-worker Simulator cache (single entry), keyed on the
        // scenario's full serialized configuration — which covers
        // architecture, node retarget, and operating point. Scenario
        // order is workload-innermost, so workload-only stretches
        // share one fingerprint and the worker keeps its Simulator —
        // and with it the power model — alive across them.
        std::unique_ptr<Simulator> cached;
        std::string cached_fp;
        // Reusable batched-evaluation scratch, shared by every group
        // this worker replays.
        power::BatchedPowerEvaluator::Workspace batch_ws;

        auto acquire = [&](const Scenario &scenario) -> Simulator & {
            if (_options.reuse_simulators) {
                std::string fp = scenario.config.toXml();
                if (cached && cached_fp == fp) {
                    cached->recycle();
                    c_recycles.add(1);
                } else {
                    cached =
                        std::make_unique<Simulator>(scenario.config);
                    c_builds.add(1);
                }
                cached_fp = std::move(fp);
            } else {
                cached = std::make_unique<Simulator>(scenario.config);
                c_builds.add(1);
                cached_fp.clear();
            }
            return *cached;
        };

        for (;;) {
            std::size_t u = cursor.fetch_add(1);
            if (u >= units.size())
                break;
            const uint64_t t_unit0 = obs::monotonicNs();
            const std::vector<std::size_t> &unit = units[u];
            // Members publish in ascending index order, so on an
            // exception the first unpublished member is the failing
            // one — deterministic error attribution for groups too.
            std::size_t published_in_unit = 0;
            auto publish = [&](ScenarioResult result) {
                std::size_t idx = result.scenario.index;
                std::size_t completed = done.fetch_add(1) + 1;
                table.set(std::move(result));
                ++published_in_unit;
                c_scenarios.add(1);
                // The result is published before the progress hook
                // runs, so a throwing callback cannot drop it; the
                // callback's exception still surfaces from run().
                if (_options.progress) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    _options.progress(table.at(idx), completed,
                                      total);
                }
            };
            try {
                const bool hooked = static_cast<bool>(
                    _options.snapshot_source || _options.snapshot_sink);
                if (unit.size() > 1 ||
                    (grouped && hooked &&
                     scenarios[unit.front()].replayable())) {
                    // One snapshot serves the whole unit: either the
                    // external source already has one for this key
                    // (then every member replays, zero timing cost),
                    // or the unit's first scenario captures it and
                    // the power-only variants batch-replay. Singleton
                    // replayable units take this path too when hooks
                    // are set, so the store sees every key.
                    GSP_TRACE_SPAN("engine/batch_group");
                    const Scenario &first = scenarios[unit.front()];

                    std::shared_ptr<const ActivitySnapshot> external;
                    if (_options.snapshot_source)
                        external = _options.snapshot_source(first);
                    if (external) {
                        GSP_TRACE_SPAN("engine/replay");
                        if (unit.size() == 1) {
                            publish(replayScenario(first, *external,
                                                   acquire(first)));
                            replayed.fetch_add(1);
                            c_replayed.add(1);
                        } else {
                            replayGroup(*this, scenarios, unit, 0,
                                        *external, batch_ws, publish,
                                        replayed);
                        }
                        busy_ns += obs::monotonicNs() - t_unit0;
                        continue;
                    }

                    auto captured_snap =
                        std::make_shared<ActivitySnapshot>();
                    try {
                        GSP_TRACE_SPAN("engine/capture");
                        publish(runScenario(first, acquire(first),
                                            captured_snap.get()));
                    } catch (...) {
                        // A source that registered in-flight state on
                        // the miss must be released, or waiters on
                        // this key would block forever.
                        if (_options.snapshot_sink)
                            _options.snapshot_sink(first, nullptr);
                        throw;
                    }
                    captured.fetch_add(1);
                    c_captured.add(1);
                    // Persist before replaying the variants so other
                    // jobs waiting on this key unblock immediately.
                    if (_options.snapshot_sink)
                        _options.snapshot_sink(first, captured_snap);
                    if (unit.size() > 1) {
                        GSP_TRACE_SPAN("engine/replay");
                        replayGroup(*this, scenarios, unit, 1,
                                    *captured_snap, batch_ws, publish,
                                    replayed);
                    }
                    busy_ns += obs::monotonicNs() - t_unit0;
                    continue;
                }

                GSP_TRACE_SPAN("engine/scenario");
                const Scenario &scenario = scenarios[unit.front()];
                // Memoization first: a cache hit skips the timing
                // run entirely.
                std::string key;
                std::shared_ptr<const ActivitySnapshot> snapshot;
                if (!grouped && _options.memoize &&
                    scenario.replayable()) {
                    key = scenario.snapshotKey();
                    {
                        std::lock_guard<std::mutex> lock(
                            snapshot_mutex);
                        auto it = snapshots.find(key);
                        if (it != snapshots.end())
                            snapshot = it->second;
                        (snapshot ? c_cache_hit : c_cache_miss).add(1);
                    }
                    // In-run miss: ask the external source (outside
                    // the cache mutex — the call may block) and seed
                    // the run cache with what it returns.
                    if (!snapshot && _options.snapshot_source) {
                        snapshot = _options.snapshot_source(scenario);
                        if (snapshot) {
                            std::lock_guard<std::mutex> lock(
                                snapshot_mutex);
                            snapshots.emplace(key, snapshot);
                        }
                    }
                }

                ScenarioResult result;
                if (snapshot) {
                    GSP_TRACE_SPAN("engine/replay");
                    result = replayScenario(scenario, *snapshot,
                                            acquire(scenario));
                    replayed.fetch_add(1);
                    c_replayed.add(1);
                } else if (!key.empty()) {
                    auto captured_snap =
                        std::make_shared<ActivitySnapshot>();
                    // acquire() inside the try: once the source has
                    // declined, a claim may be held, and even a
                    // Simulator construction failure must release it.
                    try {
                        GSP_TRACE_SPAN("engine/capture");
                        result = runScenario(scenario,
                                             acquire(scenario),
                                             captured_snap.get());
                    } catch (...) {
                        // Release the source's in-flight claim.
                        if (_options.snapshot_sink)
                            _options.snapshot_sink(scenario, nullptr);
                        throw;
                    }
                    captured.fetch_add(1);
                    c_captured.add(1);
                    if (_options.snapshot_sink)
                        _options.snapshot_sink(scenario,
                                               captured_snap);
                    std::lock_guard<std::mutex> lock(snapshot_mutex);
                    if (!snapshots
                             .emplace(key, std::move(captured_snap))
                             .second)
                        c_insert_race.add(1);
                } else {
                    result = runScenario(scenario, acquire(scenario),
                                         nullptr);
                }
                publish(std::move(result));
            } catch (...) {
                // The failed run may have left the Simulator mid-
                // kernel; never recycle it into another scenario.
                cached.reset();
                cached_fp.clear();
                std::size_t fail = scenarios[unit[std::min(
                    published_in_unit, unit.size() - 1)]].index;
                std::lock_guard<std::mutex> lock(error_mutex);
                if (fail < error_index) {
                    error_index = fail;
                    error = std::current_exception();
                }
            }
            busy_ns += obs::monotonicNs() - t_unit0;
        }

        c_busy.add(busy_ns);
        c_idle.add(obs::monotonicNs() - t_worker0 - busy_ns);
    };

    if (workers == 1) {
        // Run inline: identical semantics, easier to debug/profile.
        worker_loop(1);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker_loop, w + 1);
        for (std::thread &t : pool)
            t.join();
    }

    table.setReplayedScenarios(replayed.load());

    SweepTelemetry telemetry;
    telemetry.scenarios = total;
    telemetry.captured = captured.load();
    telemetry.replayed = replayed.load();
    telemetry.governed = governed;
    telemetry.workers = workers;
    telemetry.wall_s =
        static_cast<double>(obs::monotonicNs() - t_run0) * 1e-9;
    telemetry.metrics = reg.snapshot().deltaFrom(metrics_before);
    table.setTelemetry(std::move(telemetry));

    if (error)
        std::rethrow_exception(error);
    return table;
}

} // namespace sim
} // namespace gpusimpow
