/**
 * @file
 * Batch-sweep vocabulary of the simulation engine: a SweepSpec
 * describes a cartesian product of GPU configurations, workloads, and
 * process nodes (the shape of the paper's Fig. 4/6 campaigns and the
 * Table II configuration comparison); expand() flattens it into an
 * ordered scenario list, and SweepResult collects the per-scenario
 * outcomes in that same deterministic order regardless of how many
 * workers produced them.
 */

#ifndef GPUSIMPOW_SIM_SWEEP_HH
#define GPUSIMPOW_SIM_SWEEP_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "obs/metrics.hh"
#include "sim/simulator.hh"

namespace gpusimpow {
namespace sim {

/** One point of a sweep: a fully-resolved configuration x workload. */
struct Scenario
{
    /** Position in the sweep's deterministic expansion order. */
    std::size_t index = 0;
    /** Configuration to simulate (process node and DVFS operating
     *  point already applied). */
    GpuConfig config;
    /** DVFS operating point this scenario runs at. */
    OperatingPoint op;
    /** Table I workload name ("matmul", "blackscholes", ...). */
    std::string workload;
    /** Problem-size multiplier. */
    unsigned scale = 1;
    /** Run the workload's device-vs-host verification afterwards. */
    bool verify = true;
    /** Human-readable tag, e.g. "GeForce GT240/40nm/matmul". */
    std::string label;

    /**
     * True when this scenario's power phase can be replayed from an
     * activity snapshot captured by any scenario with the same
     * snapshotKey(). The throttling governor is the simulator's only
     * power-to-timing feedback, so everything else qualifies.
     */
    bool replayable() const;

    /**
     * Key of the engine's cross-worker snapshot cache: the timing
     * fingerprint of the configuration plus the workload identity
     * (name, scale, verify). Two scenarios with equal keys produce
     * bit-identical phase-1 results, whatever their process node,
     * supply scale, or cooling solution.
     */
    std::string snapshotKey() const;
};

/**
 * Serialized form of the timing-relevant half of a configuration:
 * the XML fingerprint with every power-only section pinned to fixed
 * values — identity strings, the tech section (node and supply scale
 * energies, not cycles), the thermal section (without the governor,
 * temperature is an output), the empirical calibration constants,
 * PCIe electricals, and the electrical half of the DRAM section (the
 * performance simulator reads only its geometry/timing fields).
 * Configurations with equal fingerprints are cycle-for-cycle,
 * counter-for-counter interchangeable to the performance simulator.
 */
std::string timingFingerprint(const GpuConfig &cfg);

/**
 * Declarative description of a batch experiment: every config is
 * evaluated at every process node, every DVFS operating point, and
 * every workload. Expansion order is config-major, then node, then
 * operating point, then workload, so adding a workload never reorders
 * existing scenarios.
 */
struct SweepSpec
{
    /** Base configurations (e.g. Table II presets, ablation points). */
    std::vector<GpuConfig> configs;
    /** Workload names, resolved through the workload registry. */
    std::vector<std::string> workloads;
    /**
     * Process nodes in nm. Each entry re-targets the config to that
     * node at its node-nominal supply. Empty = keep each config's own
     * node (one pass per config).
     */
    std::vector<unsigned> tech_nodes;
    /**
     * DVFS operating points swept for every (config, node) pair.
     * Empty = one pass at each config's own operating point, with
     * labels and expansion order identical to a spec without the
     * axis. When present, every point (including the identity) gets
     * its own label segment.
     */
    std::vector<OperatingPoint> operating_points;
    /**
     * Cooling presets (ThermalConfig::coolingPresets names) swept
     * between the operating-point and workload axes. Each entry
     * enables the thermal subsystem with that preset, inheriting the
     * base config's ambient/t-limit/throttle settings; empty = keep
     * each config's own thermal section (and pre-axis labels).
     */
    std::vector<std::string> coolings;
    /** Problem-size multiplier forwarded to every workload. */
    unsigned scale = 1;
    /** Run each workload's device-vs-host verification afterwards. */
    bool verify = true;

    /** Number of scenarios expand() will produce. */
    std::size_t size() const;

    /** Flatten into the deterministic scenario order. */
    std::vector<Scenario> expand() const;
};

/** One kernel of a scenario, tagged with its Fig. 6 label. */
struct KernelResult
{
    std::string label;
    /** False for kernels too short to re-run for measurement
     *  (workloads::KernelLaunch::repeatable). */
    bool repeatable = true;
    KernelRun run;
};

/** Everything measured for one scenario. */
struct ScenarioResult
{
    Scenario scenario;
    /** Per-kernel results in launch order. */
    std::vector<KernelResult> kernels;
    /** Simulated duration of the whole kernel sequence, s. */
    double time_s = 0.0;
    /** Card-level energy (chip + DRAM) over the sequence, J. */
    double energy_j = 0.0;
    /** Time-weighted average card power, W. */
    double avg_power_w = 0.0;
    /** Chip static power, W. */
    double static_w = 0.0;
    /** Chip area, mm^2. */
    double area_mm2 = 0.0;
    /** Core supply voltage the power model resolved and used, V. */
    double vdd = 0.0;
    /** Effective shader clock the scenario ran at, Hz. */
    double shader_hz = 0.0;
    /** Result of the workload's verification (true when skipped). */
    bool verified = false;
    /** True when the thermal subsystem ran for this scenario. */
    bool thermal = false;
    /** Hottest steady-state block temperature across kernels, K. */
    double t_max_k = 0.0;
    /** True when any kernel ran with a throttling clamp. */
    bool throttled = false;
    /** False when any kernel hit thermal runaway. */
    bool thermal_converged = true;
    /** Lowest clamped freq_scale across kernels (the configured
     *  scale when nothing throttled). */
    double min_freq_scale = 0.0;

    /** Energy-delay product, J*s. */
    double edp() const { return energy_j * time_s; }
};

/**
 * How a sweep executed, as opposed to what it produced: scheduling
 * counts the engine asserts from its own per-run atomics (so they are
 * exact even when other engines run concurrently in the process),
 * plus the observability registry's delta over the run. Dumped as the
 * `--metrics-json` document; see docs/observability.md for the
 * counter name registry.
 */
struct SweepTelemetry
{
    /** Scenarios executed (== SweepResult::size()). */
    std::size_t scenarios = 0;
    /** Scenarios that ran timing and captured an ActivitySnapshot. */
    std::size_t captured = 0;
    /** Scenarios whose power phase replayed from a snapshot. */
    std::size_t replayed = 0;
    /** Scenarios pinned to full simulation by the throttling
     *  governor's power-to-timing feedback. */
    std::size_t governed = 0;
    /** Worker threads the run actually used. */
    unsigned workers = 0;
    /** Wall-clock duration of SimulationEngine::run(), s. */
    double wall_s = 0.0;
    /**
     * Registry delta over the run (counters, gauges, histograms).
     * The registry is process-wide: when several engines run
     * concurrently their deltas mix here — the scheduling counts
     * above are the per-run source of truth.
     */
    obs::MetricsSnapshot metrics;

    /** The `--metrics-json` document (schema gpusimpow-metrics-1). */
    std::string toJson() const;
};

/**
 * Thread-safe result table of a sweep. Slots are preallocated in
 * scenario order; workers publish each finished ScenarioResult into
 * its own slot, so iteration order always matches SweepSpec::expand()
 * no matter how many workers ran or in which order they finished.
 */
class SweepResult
{
  public:
    SweepResult();
    explicit SweepResult(std::size_t scenario_count);

    /** Publish one finished scenario into its slot (thread-safe). */
    void set(ScenarioResult result);

    /** Number of scenario slots. */
    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** Scenario result by expansion index. */
    const ScenarioResult &at(std::size_t index) const;

    /**
     * All rows in deterministic expansion order. Unsynchronized
     * view — only iterate after the producing run() has returned
     * (use at() to read single rows while workers may still be
     * publishing).
     */
    const std::vector<ScenarioResult> &rows() const { return _rows; }

    /** Sum of simulated kernel time across scenarios, s. */
    double totalSimulatedTime() const;

    /** Render an aligned summary table (one line per scenario). */
    std::string formatTable() const;

    /** Scenarios whose power phase was replayed from a memoized
     *  activity snapshot (0 when memoization was off). Set by the
     *  engine once the run has drained. */
    std::size_t replayedScenarios() const;
    void setReplayedScenarios(std::size_t n);

    /** Execution telemetry of the run that produced this table
     *  (default-constructed for hand-built tables). Set by the
     *  engine once the run has drained. */
    const SweepTelemetry &telemetry() const { return _telemetry; }
    void setTelemetry(SweepTelemetry telemetry);

  private:
    /** unique_ptr keeps SweepResult movable despite the mutex. */
    std::unique_ptr<std::mutex> _mutex;
    std::vector<ScenarioResult> _rows;
    std::size_t _replayed = 0;
    SweepTelemetry _telemetry;
};

} // namespace sim
} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_SWEEP_HH
