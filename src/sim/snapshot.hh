/**
 * @file
 * Phase-1 artifacts of the two-phase simulation flow. The expensive
 * half of GPUSimPow is the cycle-level timing run; the power and
 * thermal models only consume its activity counters. An
 * ActivitySnapshot captures everything those consumers need — the
 * whole-kernel counters, per-kernel timing, and the per-interval
 * activity deltas behind power traces — so any power-only variant of
 * a configuration (process node, supply scale, cooling solution) can
 * be evaluated by replay, without re-running timing.
 *
 * Snapshots serialize to a stable line-oriented text form. All
 * floating-point fields travel as C99 hex floats, so a parsed
 * snapshot replays bit-identically to the run that captured it.
 */

#ifndef GPUSIMPOW_SIM_SNAPSHOT_HH
#define GPUSIMPOW_SIM_SNAPSHOT_HH

#include <string>
#include <vector>

#include "perf/activity.hh"
#include "perf/gpu.hh"

namespace gpusimpow {

/** Raw activity of one trace sampling interval. */
struct ActivitySample
{
    /** Interval start, s. */
    double t0 = 0.0;
    /** Interval end, s. */
    double t1 = 0.0;
    /** Activity delta over the interval. */
    perf::ChipActivity delta;
};

/** Phase-1 (timing) record of one kernel execution. */
struct KernelSnapshot
{
    /** Kernel label (Fig. 6 bar name). */
    std::string label;
    /** workloads::KernelLaunch::repeatable of the captured kernel. */
    bool repeatable = true;
    /** True when per-interval samples were recorded. */
    bool with_trace = false;
    /** Timing result with the whole-kernel activity counters. */
    perf::RunResult perf;
    /** Per-interval activity (empty unless with_trace). */
    std::vector<ActivitySample> samples;
};

/** Phase-1 record of one scenario: a workload's kernel sequence. */
struct ActivitySnapshot
{
    /** Workload the snapshot was captured from. */
    std::string workload;
    /** Problem-size multiplier it ran at. */
    unsigned scale = 1;
    /** True when kernels carry per-interval samples. */
    bool with_trace = false;
    /** Sampling period the samples were recorded at, s. */
    double sample_interval_s = 0.0;
    /** Device-vs-host verification outcome of the captured run
     *  (verification reads device memory — a timing-phase output). */
    bool verified = true;
    /** Kernels in launch order. */
    std::vector<KernelSnapshot> kernels;

    /** Serialize to the stable text form. */
    std::string serialize() const;

    /** Parse a snapshot written by serialize(); fatal() on malformed
     *  or schema-incompatible input. */
    static ActivitySnapshot parse(const std::string &text);
};

} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_SNAPSHOT_HH
