#include "sim/request.hh"

#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "tech/tech.hh"
#include "workloads/workload.hh"

namespace gpusimpow {
namespace sim {

namespace {

GpuConfig
resolvePreset(const std::string &name)
{
    if (name == "gt240")
        return GpuConfig::gt240();
    if (name == "gtx580")
        return GpuConfig::gtx580();
    fatal("unknown GPU preset '", name,
          "' (expected gt240 or gtx580)");
}

/** Drop the empty entries stray commas produce ("a,b," / "a,,b"). */
std::vector<std::string>
nonEmpty(const std::string &list)
{
    std::vector<std::string> out;
    for (const std::string &entry : split(list, ','))
        if (!entry.empty())
            out.push_back(entry);
    return out;
}

} // namespace

SweepSpec
SweepRequest::toSpec() const
{
    SweepSpec spec;
    if (!config_xml.empty()) {
        spec.configs.push_back(GpuConfig::fromXml(config_xml));
    } else {
        for (const std::string &name : nonEmpty(gpus))
            spec.configs.push_back(resolvePreset(name));
    }
    if (workloads == "all") {
        spec.workloads = gpusimpow::workloads::listWorkloadNames();
    } else {
        spec.workloads = nonEmpty(workloads);
    }
    for (const std::string &node : nonEmpty(nodes))
        spec.tech_nodes.push_back(
            parseUnsigned(node, "sweep nodes", tech::min_node_nm,
                          tech::max_node_nm));
    if (!vf.empty())
        spec.operating_points = OperatingPoint::parseList(vf);

    // The thermal tuning scalars mean nothing without the subsystem.
    if (coolings.empty() && (ambient_set || t_limit_set || throttle))
        fatal("sweep request: ambient/t-limit/throttle require a "
              "cooling axis");
    if (!coolings.empty()) {
        spec.coolings = nonEmpty(coolings);
        // Reject unknown presets before any scenario runs.
        for (const std::string &name : spec.coolings) {
            ThermalConfig probe;
            probe.applyCooling(name);
        }
        // Same bounds config::validate enforces, caught before a
        // simulation is built.
        if (ambient_set && !(ambient_k > 200.0 && ambient_k < 400.0))
            fatal("sweep request: ambient ", ambient_k,
                  " K out of range (200, 400)");
        if (t_limit_set && !(t_limit_k > 200.0 && t_limit_k <= 500.0))
            fatal("sweep request: t-limit ", t_limit_k,
                  " K out of range (200, 500]");
        for (GpuConfig &cfg : spec.configs) {
            if (ambient_set)
                cfg.thermal.ambient_k = ambient_k;
            if (t_limit_set)
                cfg.thermal.t_limit_k = t_limit_k;
            if (throttle)
                cfg.thermal.throttle = true;
            if (cfg.thermal.t_limit_k <= cfg.thermal.ambient_k)
                fatal("sweep request: t-limit (",
                      cfg.thermal.t_limit_k,
                      " K) must exceed the ambient temperature (",
                      cfg.thermal.ambient_k, " K)");
        }
    }
    spec.scale = scale;
    spec.verify = verify;

    // An empty axis would "pass" with zero scenarios; treat it as
    // the user error it is.
    if (spec.configs.empty())
        fatal("sweep request: no GPU configurations given (gpus '",
              gpus, "')");
    if (spec.workloads.empty())
        fatal("sweep request: no workloads given (workloads '",
              workloads, "')");
    if (!nodes.empty() && spec.tech_nodes.empty())
        fatal("sweep request: no process nodes given (nodes '", nodes,
              "')");
    if (!vf.empty() && spec.operating_points.empty())
        fatal("sweep request: no operating points given (vf '", vf,
              "')");
    if (!coolings.empty() && spec.coolings.empty())
        fatal("sweep request: no cooling presets given (coolings '",
              coolings, "')");
    return spec;
}

namespace {

/** One "tag value" line; the axis strings are user input, so embedded
 *  newlines would desynchronize the line framing — reject them. */
void
emitField(std::string &out, const char *tag, const std::string &value)
{
    if (value.find('\n') != std::string::npos)
        fatal("sweep request: field '", tag,
              "' must not contain newlines");
    out += tag;
    out += ' ';
    out += value;
    out += '\n';
}

} // namespace

std::string
SweepRequest::serialize() const
{
    std::string out;
    out += request_magic;
    out += '\n';
    emitField(out, "gpus", gpus);
    emitField(out, "workloads", workloads);
    emitField(out, "nodes", nodes);
    emitField(out, "vf", vf);
    emitField(out, "coolings", coolings);
    out += strformat("scale %u\n", scale);
    out += strformat("verify %d\n", verify ? 1 : 0);
    out += strformat("ambient %d %a\n", ambient_set ? 1 : 0,
                     ambient_k);
    out += strformat("t_limit %d %a\n", t_limit_set ? 1 : 0,
                     t_limit_k);
    out += strformat("throttle %d\n", throttle ? 1 : 0);
    out += strformat("config_xml %zu\n", config_xml.size());
    out += config_xml;
    out += '\n';
    out += "end ";
    out += request_magic;
    out += '\n';
    return out;
}

namespace {

/** Line cursor over the serialized form; fatal() messages carry the
 *  line number so a malformed job frame is diagnosable. */
struct LineReader
{
    const std::string &text;
    std::size_t pos = 0;
    std::size_t line_no = 0;

    std::string nextLine()
    {
        if (pos >= text.size())
            fatal("sweep request: truncated after line ", line_no);
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            fatal("sweep request: unterminated line ", line_no + 1);
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++line_no;
        return line;
    }

    /** "tag value" line; the value may be empty. */
    std::string field(const char *tag)
    {
        std::string line = nextLine();
        std::string prefix = std::string(tag) + " ";
        if (line == tag)
            return "";
        if (!startsWith(line, prefix))
            fatal("sweep request: line ", line_no, ": expected '", tag,
                  "', got '", line, "'");
        return line.substr(prefix.size());
    }
};

} // namespace

SweepRequest
SweepRequest::parse(const std::string &text)
{
    SweepRequest req;
    LineReader in{text};
    if (in.nextLine() != request_magic)
        fatal("sweep request: line 1: bad magic (expected '",
              request_magic, "')");
    req.gpus = in.field("gpus");
    req.workloads = in.field("workloads");
    req.nodes = in.field("nodes");
    req.vf = in.field("vf");
    req.coolings = in.field("coolings");
    req.scale = parseUnsigned(in.field("scale"),
                              "sweep request: scale", 1, 1u << 20);
    {
        std::istringstream vs(in.field("verify"));
        req.verify = readFlagToken(vs, "sweep request: verify");
    }
    {
        std::istringstream vs(in.field("ambient"));
        req.ambient_set = readFlagToken(vs, "sweep request: ambient");
        req.ambient_k = readDoubleToken(vs, "sweep request: ambient");
    }
    {
        std::istringstream vs(in.field("t_limit"));
        req.t_limit_set = readFlagToken(vs, "sweep request: t_limit");
        req.t_limit_k = readDoubleToken(vs, "sweep request: t_limit");
    }
    {
        std::istringstream vs(in.field("throttle"));
        req.throttle = readFlagToken(vs, "sweep request: throttle");
    }
    std::size_t xml_bytes = parseUnsigned(
        in.field("config_xml"), "sweep request: config_xml size");
    if (in.pos + xml_bytes + 1 > text.size())
        fatal("sweep request: line ", in.line_no,
              ": config_xml section truncated (want ", xml_bytes,
              " bytes)");
    req.config_xml = text.substr(in.pos, xml_bytes);
    in.pos += xml_bytes;
    if (text[in.pos] != '\n')
        fatal("sweep request: config_xml section not "
              "newline-terminated");
    ++in.pos;
    if (in.nextLine() != std::string("end ") + request_magic)
        fatal("sweep request: line ", in.line_no,
              ": missing end marker");
    return req;
}

} // namespace sim
} // namespace gpusimpow
