/**
 * @file
 * SweepSession — the single public entry point of the sweep stack.
 * Build one from EngineOptions (plus an optional persistent store
 * handle), then submit() SweepSpecs: per-scenario results stream to
 * the callback as workers finish them, and the completed table
 * returns in deterministic expansion order.
 *
 * The session owns the two cross-job levers the bare engine cannot
 * provide:
 *
 *  - persistence: snapshots captured by any submit() are written to
 *    the store (content-addressed by storeKey()) and later submits —
 *    in this process or the next — replay from them, so a warm store
 *    answers a repeat sweep with zero timing captures;
 *
 *  - in-flight dedupe: concurrent submit() calls (the sweep
 *    service's concurrent client jobs) that need the same snapshot
 *    key elect exactly one capturer; everyone else blocks until the
 *    snapshot is published and then replays. Two clients never
 *    capture the same scenario twice.
 *
 * Everything is bit-identical to a cold run by construction: replay
 * consumes the same hex-float snapshot text whether it came from this
 * run, another job, or disk.
 */

#ifndef GPUSIMPOW_SIM_SESSION_HH
#define GPUSIMPOW_SIM_SESSION_HH

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "sim/engine.hh"
#include "store/store.hh"

namespace gpusimpow {
namespace sim {

/** Long-lived sweep façade over the engine + optional store. */
class SweepSession
{
  public:
    /**
     * The options are validated here (fatal() on incoherence); the
     * session installs its own snapshot_source/snapshot_sink hooks,
     * so options carrying either are rejected — and a store requires
     * memoize, which is what feeds the replay path.
     */
    explicit SweepSession(EngineOptions options,
                          store::StoreHandle store = nullptr);

    /**
     * Execute one sweep job. `on_result` (when set, otherwise the
     * options' progress hook) streams every finished scenario in
     * completion order: (result, completed count, total count),
     * serialized by the engine. Thread-safe: the service submits
     * concurrent jobs against one session; identical scenarios
     * across them are captured once (see in-flight dedupe above).
     */
    SweepResult submit(
        const SweepSpec &spec,
        std::function<void(const ScenarioResult &, std::size_t,
                           std::size_t)>
            on_result = {});

    /** Effective worker count per job. */
    unsigned jobs() const;

    /** The session's base options (without the session hooks). */
    const EngineOptions &options() const { return _options; }

    /** The persistent store, or nullptr when running store-less. */
    const store::StoreHandle &storeHandle() const { return _store; }

    /**
     * Content address of a scenario's snapshot in the store:
     * Scenario::snapshotKey() extended with the trace options, which
     * shape the snapshot payload — a store is shared by processes
     * with different trace settings, unlike the engine's in-run
     * cache, where options are uniform.
     */
    std::string storeKey(const Scenario &scenario) const;

  private:
    std::shared_ptr<const ActivitySnapshot>
    source(const Scenario &scenario);
    void sink(const Scenario &scenario,
              const std::shared_ptr<const ActivitySnapshot> &snapshot);

    EngineOptions _options;
    store::StoreHandle _store;

    std::mutex _mutex;
    std::condition_variable _cv;
    /** Keys some job is currently capturing; waiters block on _cv. */
    std::set<std::string> _inflight;
    /**
     * Snapshots fulfilled during this session's lifetime, so dedupe
     * works store-less and repeat queries skip the disk. Bounded by
     * the distinct snapshot keys submitted to this session.
     */
    std::map<std::string, std::shared_ptr<const ActivitySnapshot>>
        _memory;
};

} // namespace sim
} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_SESSION_HH
