#include "sim/sweep.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace gpusimpow {
namespace sim {

bool
Scenario::replayable() const
{
    return !(config.thermal.enabled && config.thermal.throttle);
}

std::string
Scenario::snapshotKey() const
{
    return timingFingerprint(config) +
           strformat("#workload=%s scale=%u verify=%d",
                     workload.c_str(), scale, verify ? 1 : 0);
}

std::string
timingFingerprint(const GpuConfig &cfg)
{
    GpuConfig t = cfg;
    // Pin everything the performance simulator never reads to fixed
    // values so it cannot split the key. The perf side consumes the
    // chip organization, clocks (freq_scale included — it shifts the
    // DRAM-to-uncore cycle ratio), core/cache/NoC geometry, and the
    // DRAM geometry/timing fields; it never touches the process
    // node, supplies, calibration energies, thermal boundary, or
    // PCIe/DRAM electricals — those only turn counters into watts.
    t.name.clear();
    t.chip.clear();
    t.tech = TechConfig{};
    t.thermal = ThermalConfig{};
    t.calib = PowerCalibConfig{};
    t.pcie = PcieConfig{};
    DramConfig dram;
    dram.channels = cfg.dram.channels;
    dram.channel_bits = cfg.dram.channel_bits;
    dram.burst_length = cfg.dram.burst_length;
    dram.latency = cfg.dram.latency;
    t.dram = dram;
    return t.toXml();
}

std::size_t
SweepSpec::size() const
{
    std::size_t nodes = tech_nodes.empty() ? 1 : tech_nodes.size();
    std::size_t ops =
        operating_points.empty() ? 1 : operating_points.size();
    std::size_t cools = coolings.empty() ? 1 : coolings.size();
    return configs.size() * nodes * ops * cools * workloads.size();
}

std::vector<Scenario>
SweepSpec::expand() const
{
    std::vector<Scenario> scenarios;
    scenarios.reserve(size());
    // An explicit operating-point axis labels every point (identity
    // included); the implicit single pass keeps pre-axis labels.
    bool label_ops = !operating_points.empty();
    std::vector<OperatingPoint> ops = operating_points;
    if (ops.empty())
        ops.push_back(OperatingPoint{});
    for (const GpuConfig &base : configs) {
        // One pass per requested node; node 0 means "as configured".
        std::vector<unsigned> nodes = tech_nodes;
        if (nodes.empty())
            nodes.push_back(0);
        for (unsigned node : nodes) {
            GpuConfig node_cfg = base;
            if (node != 0) {
                node_cfg.tech.node_nm = node;
                node_cfg.tech.vdd = -1.0; // node-nominal supply
            }
            for (const OperatingPoint &op : ops) {
                GpuConfig op_cfg = node_cfg;
                // An empty axis means "each config's own operating
                // point": leave whatever scales the base config
                // carries untouched.
                if (label_ops)
                    op.applyTo(op_cfg);
                std::string op_prefix =
                    op_cfg.name + "/" +
                    std::to_string(op_cfg.tech.node_nm) + "nm/" +
                    (label_ops ? op.label() + "/" : "");
                // Same contract for the cooling axis: an empty axis
                // keeps the config's own thermal section and labels.
                std::vector<std::string> cools = coolings;
                bool label_cooling = !cools.empty();
                if (cools.empty())
                    cools.push_back("");
                for (const std::string &cooling : cools) {
                    GpuConfig cfg = op_cfg;
                    std::string prefix = op_prefix;
                    if (label_cooling) {
                        cfg.thermal.applyCooling(cooling);
                        prefix += cooling + "/";
                    }
                    for (const std::string &wl : workloads) {
                        Scenario s;
                        s.index = scenarios.size();
                        s.config = cfg;
                        s.op = cfg.operatingPoint();
                        s.workload = wl;
                        s.scale = scale;
                        s.verify = verify;
                        s.label = prefix + wl;
                        scenarios.push_back(std::move(s));
                    }
                }
            }
        }
    }
    return scenarios;
}

SweepResult::SweepResult() : SweepResult(0) {}

SweepResult::SweepResult(std::size_t scenario_count)
    : _mutex(std::make_unique<std::mutex>()), _rows(scenario_count)
{
}

void
SweepResult::set(ScenarioResult result)
{
    std::lock_guard<std::mutex> lock(*_mutex);
    std::size_t index = result.scenario.index;
    GSP_ASSERT(index < _rows.size(),
               "scenario index ", index, " out of range ", _rows.size());
    _rows[index] = std::move(result);
}

std::size_t
SweepResult::size() const
{
    std::lock_guard<std::mutex> lock(*_mutex);
    return _rows.size();
}

const ScenarioResult &
SweepResult::at(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(*_mutex);
    GSP_ASSERT(index < _rows.size(),
               "scenario index ", index, " out of range ", _rows.size());
    return _rows[index];
}

std::size_t
SweepResult::replayedScenarios() const
{
    std::lock_guard<std::mutex> lock(*_mutex);
    return _replayed;
}

void
SweepResult::setReplayedScenarios(std::size_t n)
{
    std::lock_guard<std::mutex> lock(*_mutex);
    _replayed = n;
}

void
SweepResult::setTelemetry(SweepTelemetry telemetry)
{
    std::lock_guard<std::mutex> lock(*_mutex);
    _telemetry = std::move(telemetry);
}

std::string
SweepTelemetry::toJson() const
{
    // Decimal seconds are fine here: the document is diagnostics, not
    // one of the bit-exact *serialize* round-trip formats.
    return strformat("{\n\"schema\":\"gpusimpow-metrics-1\",\n"
                     "\"sweep\":{\"scenarios\":%zu,\"captured\":%zu,"
                     "\"replayed\":%zu,\"governed\":%zu,"
                     "\"workers\":%u,\"wall_s\":%.6f},\n",
                     scenarios, captured, replayed, governed, workers,
                     wall_s) +
           metrics.jsonBody() + "\n}\n";
}

double
SweepResult::totalSimulatedTime() const
{
    std::lock_guard<std::mutex> lock(*_mutex);
    double total = 0.0;
    for (const ScenarioResult &r : _rows)
        total += r.time_s;
    return total;
}

std::string
SweepResult::formatTable() const
{
    std::lock_guard<std::mutex> lock(*_mutex);
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-40s %9s %9s %10s %10s %11s %12s %6s\n",
                  "scenario", "kernels", "clk[MHz]", "time[us]",
                  "power[W]", "energy[mJ]", "EDP[uJ*s]", "verify");
    out += line;
    for (const ScenarioResult &r : _rows) {
        std::snprintf(line, sizeof(line),
                      "%-40s %9zu %9.0f %10.1f %10.2f %11.3f %12.4f "
                      "%6s",
                      r.scenario.label.c_str(), r.kernels.size(),
                      r.shader_hz / 1e6, r.time_s * 1e6,
                      r.avg_power_w, r.energy_j * 1e3, r.edp() * 1e9,
                      r.verified ? "PASS" : "FAIL");
        out += line;
        // Thermal rows only grow a suffix, so thermal-free sweeps
        // render exactly as before the subsystem existed.
        if (r.thermal) {
            std::snprintf(line, sizeof(line), "  Tmax %.1f K%s%s",
                          r.t_max_k,
                          r.throttled ? strformat(" THROTTLED x%.3g",
                                                  r.min_freq_scale)
                                            .c_str()
                                      : "",
                          r.thermal_converged ? "" : " RUNAWAY");
            out += line;
        }
        out += '\n';
    }
    return out;
}

} // namespace sim
} // namespace gpusimpow
