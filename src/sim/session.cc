#include "sim/session.hh"

#include <utility>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"

namespace gpusimpow {
namespace sim {

SweepSession::SweepSession(EngineOptions options,
                           store::StoreHandle store)
    : _options(std::move(options)), _store(std::move(store))
{
    if (_options.snapshot_source || _options.snapshot_sink)
        fatal("SweepSession: the session owns the snapshot hooks; "
              "set a store handle instead of snapshot_source/"
              "snapshot_sink");
    if (_store && !_options.memoize)
        fatal("SweepSession: a persistent store requires memoize — "
              "the store can only feed the memoized replay path");
    _options.validate();
}

unsigned
SweepSession::jobs() const
{
    // Engine construction resolves jobs == 0 to the hardware thread
    // count; build a throwaway one so the answer matches submit().
    return SimulationEngine(_options).jobs();
}

std::string
SweepSession::storeKey(const Scenario &scenario) const
{
    std::string key = scenario.snapshotKey();
    key += strformat("#trace=%d", _options.with_trace ? 1 : 0);
    if (_options.with_trace)
        key += strformat(" sample=%a", _options.sample_interval_s);
    return key;
}

std::shared_ptr<const ActivitySnapshot>
SweepSession::source(const Scenario &scenario)
{
    const std::string key = storeKey(scenario);
    {
        std::unique_lock<std::mutex> lock(_mutex);
        for (;;) {
            auto it = _memory.find(key);
            if (it != _memory.end())
                return it->second;
            if (_inflight.find(key) == _inflight.end()) {
                _inflight.insert(key); // claim: this job captures
                break;
            }
            // Another job is capturing this key right now; blocking
            // here is the cross-job dedupe ("two clients never
            // capture the same scenario twice").
            _cv.wait(lock);
        }
    }

    // Claim held. Try the disk (outside the session lock — parsing a
    // snapshot is not cheap) before conceding a capture.
    if (_store) {
        if (auto snap = _store->fetch(key)) {
            std::lock_guard<std::mutex> lock(_mutex);
            _memory[key] = snap;
            _inflight.erase(key);
            _cv.notify_all();
            return snap;
        }
    }
    return nullptr; // engine captures; sink() releases the claim
}

void
SweepSession::sink(
    const Scenario &scenario,
    const std::shared_ptr<const ActivitySnapshot> &snapshot)
{
    const std::string key = storeKey(scenario);
    // Persist before releasing the claim, so a waiter that misses
    // _memory (impossible today, but cheap to keep true) would still
    // find the entry on disk.
    if (snapshot && _store)
        _store->put(key, *snapshot);
    std::lock_guard<std::mutex> lock(_mutex);
    if (snapshot)
        _memory[key] = snapshot;
    // snapshot == nullptr: the capture failed — release the claim
    // with nothing published, so a waiter re-claims and retries
    // rather than blocking forever.
    _inflight.erase(key);
    _cv.notify_all();
}

SweepResult
SweepSession::submit(
    const SweepSpec &spec,
    std::function<void(const ScenarioResult &, std::size_t,
                       std::size_t)>
        on_result)
{
    EngineOptions opt = _options;
    if (on_result)
        opt.progress = std::move(on_result);
    if (_options.memoize) {
        opt.snapshot_source = [this](const Scenario &s) {
            return source(s);
        };
        opt.snapshot_sink =
            [this](const Scenario &s,
                   const std::shared_ptr<const ActivitySnapshot>
                       &snap) { sink(s, snap); };
    }
    SimulationEngine engine(opt);
    return engine.run(spec);
}

} // namespace sim
} // namespace gpusimpow
