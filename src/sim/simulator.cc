#include "sim/simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/batched.hh"

namespace gpusimpow {

namespace {

/** Governor refinement rounds (measure -> clamp -> re-measure). */
constexpr int max_governor_rounds = 4;
/** Bisection steps per round over the freq_scale interval. */
constexpr int governor_bisect_steps = 40;
/** The governor accepts a re-measured point this far over the
 *  limit, K (the analytic clock model is only first-order). */
constexpr double governor_slack_k = 0.25;
/** Extra clamp applied when a re-measured point still overheats: the
 *  linear clock model is optimistic for memory-bound kernels (their
 *  runtime stretches less than 1/f, so dynamic power lands higher
 *  than predicted), and near the leakage-stability boundary that
 *  optimism would otherwise shave only ~2% per round. */
constexpr double governor_backoff = 0.9;

} // namespace

std::string
ThermalResult::hottestBlock() const
{
    // Die blocks only, consistent with t_max_k: the DRAM board block
    // has its own rating and its own (clock-invariant) power.
    std::size_t best = block_names.size();
    for (std::size_t i = 0;
         i < block_temps_k.size() && i < block_names.size(); ++i) {
        if (block_names[i] == "dram")
            continue;
        if (best == block_names.size() ||
            block_temps_k[i] > block_temps_k[best])
            best = i;
    }
    return best < block_names.size() ? block_names[best] : "";
}

/**
 * Self-batching state of the traced thermal path: when no engine
 * group supplies precomputed rows, the simulator batches its own
 * compiled model over the snapshot's intervals — one SIMD pass over
 * the temperature-independent dynamic/DRAM/per-block rows — so the
 * sequential thermal march only rescales per-block leakage.
 */
struct Simulator::SelfBatch
{
    power::BatchedPowerEvaluator eval;
    power::BatchedPowerEvaluator::Workspace ws;
    std::vector<power::BatchedKernelPower> out;
    std::vector<const perf::ChipActivity *> acts;

    explicit SelfBatch(const power::CompiledPowerModel &cpm)
        : eval({&cpm})
    {
    }
};

Simulator::Simulator(const GpuConfig &cfg)
    : _cfg(cfg), _nominal_freq_scale(cfg.clocks.freq_scale)
{
    GSP_TRACE_SPAN("sim/setup");
    _gpu = std::make_unique<perf::Gpu>(_cfg);
    _power = std::make_unique<power::GpuPowerModel>(_cfg);
}

Simulator::~Simulator() = default;

void
Simulator::recycle()
{
    GSP_TRACE_SPAN("sim/recycle");
    _gpu->resetDeviceState();
    // Erase every thermal trace of previous scenarios: the governor's
    // clamp and the carried transient temperatures both must not leak
    // into the next workload.
    if (_cfg.clocks.freq_scale != _nominal_freq_scale)
        applyFreqScale(_nominal_freq_scale);
    _thermal_state = thermal::ThermalNetwork::State{};
    _steady_warm.clear();
}

void
Simulator::ensureThermal()
{
    if (_network)
        return;
    _blocks = _power->thermalBlocks();
    _network =
        std::make_unique<thermal::ThermalNetwork>(_blocks, _cfg.thermal);
}

void
Simulator::applyFreqScale(double freq_scale)
{
    _cfg.clocks.freq_scale = freq_scale;
    _gpu->setFreqScale(freq_scale);
    // The power model caches V^2*f scales and clock-derived rates;
    // rebuild it at the clamped clock (the die geometry, and with it
    // the thermal network, is frequency-invariant).
    _power = std::make_unique<power::GpuPowerModel>(_cfg);
    // The self-batch evaluator stacked the old model's coefficients.
    _self_batch.reset();
}

const power::BatchedKernelPower &
Simulator::selfBatchRows(const KernelSnapshot &snap)
{
    if (!_self_batch)
        _self_batch = std::make_unique<SelfBatch>(_power->compiled());
    SelfBatch &sb = *_self_batch;
    sb.acts.clear();
    sb.acts.reserve(snap.samples.size());
    for (const ActivitySample &a : snap.samples)
        sb.acts.push_back(&a.delta);
    sb.eval.evaluate(sb.acts, /*want_blocks=*/true, sb.ws, sb.out);
    return sb.out.front();
}

KernelRun
Simulator::runKernel(const perf::KernelProgram &prog,
                     const perf::LaunchConfig &launch, bool with_trace,
                     double sample_interval_s, bool repeatable)
{
    // The throttling governor is the only power-to-timing feedback in
    // the simulator; everything else runs the two phases back to
    // back — which is exactly what makes a memoized replay of the
    // power phase bit-identical to a full run.
    if (_cfg.thermal.enabled && _cfg.thermal.throttle)
        return runThermal(prog, launch, with_trace, sample_interval_s,
                          repeatable);
    KernelSnapshot snap =
        capturePerf(prog, launch, with_trace, sample_interval_s);
    snap.repeatable = repeatable;
    return replayKernel(snap);
}

KernelSnapshot
Simulator::capturePerf(const perf::KernelProgram &prog,
                       const perf::LaunchConfig &launch,
                       bool with_trace, double sample_interval_s)
{
    GSP_TRACE_SPAN("sim/capture");
    KernelSnapshot snap;
    snap.with_trace = with_trace;
    perf::Gpu::SampleFn sampler;
    if (with_trace) {
        sampler = [&](const perf::ChipActivity &delta, double t0,
                      double t1) {
            snap.samples.push_back({t0, t1, delta});
        };
    }
    snap.perf = _gpu->run(prog, launch, sampler,
                          with_trace ? sample_interval_s : 0.0);
    return snap;
}

KernelRun
Simulator::evaluateSamples(const KernelSnapshot &snap,
                           const power::BatchedKernelPower *batched)
{
    KernelRun run;
    run.perf = snap.perf;
    if (batched) {
        GSP_ASSERT(batched->n_intervals == snap.samples.size(),
                   "batched power rows do not match the snapshot");
    }

    // Per-interval power evaluation runs on the compiled model: a
    // handful of dot products into a reused workspace, instead of a
    // PowerNode tree per sample — or, on the batched replay path,
    // reads the rows a BatchedPowerEvaluator already produced for
    // this variant (bit-identical by its contract).
    const power::CompiledPowerModel &cpm = _power->compiled();
    bool thermal_on = _cfg.thermal.enabled;
    if (snap.with_trace && !thermal_on) {
        double static_w = _power->staticPower();
        run.trace.reserve(snap.samples.size());
        for (std::size_t i = 0; i < snap.samples.size(); ++i) {
            const ActivitySample &a = snap.samples[i];
            PowerSample s;
            s.t0 = a.t0;
            s.t1 = a.t1;
            if (batched) {
                s.dynamic_w = batched->dynamic_w[i];
                s.dram_w = batched->dram_w[i];
            } else {
                cpm.evaluate(a.delta, _eval);
                s.dynamic_w = _eval.dynamic_w;
                s.dram_w = _eval.dram_w;
            }
            s.static_w = static_w;
            run.trace.push_back(s);
        }
    } else if (snap.with_trace) {
        GSP_TRACE_SPAN("thermal/transient");
        // Thermal transient path: every sampling interval advances
        // the RC network under that interval's block powers, with
        // the leakage share of the next interval re-evaluated at the
        // current transient temperatures — the feedback loop, sampled.
        // The batched rows carry the per-block dynamic split and the
        // nominal-temperature statics, so the temperature-dependent
        // leakage scale stays a per-interval scalar either way.
        ensureThermal();
        // No precomputed rows from an engine group? Batch them
        // ourselves: all intervals' temperature-independent rows in
        // one pass, so the loop below never re-runs the scalar
        // per-interval evaluation. Bit-identical by the batched
        // evaluator's contract.
        if (!batched && !snap.samples.empty())
            batched = &selfBatchRows(snap);
        if (batched) {
            GSP_ASSERT(snap.samples.empty() ||
                           (batched->n_blocks == _blocks.size() &&
                            !batched->static_blocks.empty()),
                       "batched power rows lack the per-block split "
                       "the thermal march needs");
        }
        run.trace.reserve(snap.samples.size());
        run.thermal.trace.reserve(snap.samples.size());
        for (std::size_t si = 0; si < snap.samples.size(); ++si) {
            const ActivitySample &a = snap.samples[si];
            double dynamic_w, dram_w;
            const double *block_dyn = nullptr;
            const power::BlockPower *block_static = nullptr;
            if (batched) {
                dynamic_w = batched->dynamic_w[si];
                dram_w = batched->dram_w[si];
                block_dyn = batched->block_dynamic_w.data() +
                            si * batched->n_blocks;
                block_static = batched->static_blocks.data();
            } else {
                cpm.evaluate(a.delta, _eval);
                dynamic_w = _eval.dynamic_w;
                dram_w = _eval.dram_w;
            }
            if (!_thermal_state.initialized)
                _thermal_state = _network->ambientState();
            _block_powers.assign(_blocks.size(), 0.0);
            double chip_static = 0.0;
            for (std::size_t i = 0; i < _blocks.size(); ++i) {
                double dyn, sub, fixed;
                if (batched) {
                    dyn = block_dyn[i];
                    sub = block_static[i].sub_leak_w;
                    // The DRAM board block's fixed share is the
                    // per-interval DRAM power (batched rows keep it
                    // out of the static split).
                    fixed = i == _blocks.dramIndex()
                                ? dram_w
                                : block_static[i].fixed_w;
                } else {
                    dyn = _eval.blocks[i].dynamic_w;
                    sub = _eval.blocks[i].sub_leak_w;
                    fixed = _eval.blocks[i].fixed_w;
                }
                double leak =
                    sub *
                    cpm.subLeakScaleAt(_thermal_state.temps_k[i]);
                _block_powers[i] = dyn + leak + fixed;
                if (i != _blocks.dramIndex())
                    chip_static += leak + fixed;
            }
            _network->advance(_thermal_state, _block_powers,
                              a.t1 - a.t0);

            PowerSample s;
            s.t0 = a.t0;
            s.t1 = a.t1;
            s.dynamic_w = dynamic_w;
            s.static_w = chip_static;
            s.dram_w = dram_w;
            run.trace.push_back(s);

            ThermalSample ts;
            ts.t0 = a.t0;
            ts.t1 = a.t1;
            ts.temps_k = _thermal_state.temps_k;
            run.thermal.trace.push_back(ts);
        }
    }

    run.report = _power->evaluate(run.perf.activity);
    return run;
}

KernelRun
Simulator::replayKernel(const KernelSnapshot &snap)
{
    return replayKernel(snap, nullptr);
}

KernelRun
Simulator::replayKernel(const KernelSnapshot &snap,
                        const power::BatchedKernelPower *batched)
{
    GSP_TRACE_SPAN("sim/replay");
    if (_cfg.thermal.enabled && _cfg.thermal.throttle)
        fatal("cannot replay a snapshot under a throttling governor: "
              "its power-to-clock feedback changes timing; run the "
              "kernel in full instead");
    KernelRun run = evaluateSamples(snap, batched);
    if (!_cfg.thermal.enabled)
        return run;
    // Ungoverned thermal: whole-kernel steady solve at the measured
    // power split, then the shared thermal tail.
    ensureThermal();
    std::vector<power::BlockPower> bp =
        _power->blockPowers(run.perf.activity);
    thermal::SteadyResult steady = solveSteady(bp, 1.0);
    finishThermal(run, bp, steady, snap.with_trace, false);
    return run;
}

KernelRun
Simulator::runOnce(const perf::KernelProgram &prog,
                   const perf::LaunchConfig &launch, bool with_trace,
                   double sample_interval_s)
{
    return evaluateSamples(
        capturePerf(prog, launch, with_trace, sample_interval_s),
        nullptr);
}

double
Simulator::dieMax(const thermal::SteadyResult &steady) const
{
    // Die blocks only: the DRAM board block runs from its own supply
    // and clock (own rating too), so it is excluded from t_max_k and
    // from the throttling criterion — the core clock cannot cool it.
    double t = 0.0;
    for (std::size_t i = 0; i < _blocks.dramIndex(); ++i)
        t = std::max(t, steady.temps_k[i]);
    return t;
}

void
Simulator::finishThermal(KernelRun &run,
                         const std::vector<power::BlockPower> &bp,
                         const thermal::SteadyResult &steady,
                         bool with_trace, bool throttled)
{
    // Whole-kernel energy accounting at the solved temperatures. On
    // thermal runaway no steady state exists: leakage evaluated at
    // the 500 K clamp would be ~180x-inflated garbage, so the report
    // falls back to the nominal junction temperature and the outcome
    // is flagged through converged == false instead.
    run.report =
        steady.converged
            ? _power->evaluateAt(run.perf.activity, steady.temps_k)
            : _power->evaluate(run.perf.activity);

    // Without a trace the transient state still has to march through
    // this kernel's span (sustained-activity history for the next
    // kernel); with a trace the sampler already did, sample by sample.
    if (!with_trace) {
        if (!_thermal_state.initialized)
            _thermal_state = _network->ambientState();
        std::vector<double> powers(bp.size(), 0.0);
        for (std::size_t i = 0; i < bp.size(); ++i)
            powers[i] = bp[i].dynamic_w +
                        bp[i].sub_leak_w *
                            _power->subLeakScaleAt(
                                _thermal_state.temps_k[i]) +
                        bp[i].fixed_w;
        _network->advance(_thermal_state, powers, run.perf.time_s);
    }

    ThermalResult &th = run.thermal;
    th.enabled = true;
    th.converged = steady.converged;
    th.throttled = throttled;
    th.iterations = steady.iterations;
    th.t_max_k = dieMax(steady);
    th.heatsink_k = steady.heatsink_k;
    th.op = {_cfg.tech.vdd_scale, _cfg.clocks.freq_scale};
    th.block_names = _blocks.names;
    th.block_temps_k = steady.temps_k;
}

thermal::SteadyResult
Simulator::solveSteady(const std::vector<power::BlockPower> &bp,
                       double freq_ratio)
{
    // Dynamic power follows the clock to first order; subthreshold
    // leakage follows the block temperature the solve is converging
    // on; gate leakage and the external DRAM follow neither.
    // Consecutive solves target nearby operating points (governor
    // bisect probes, kernels of one scenario), so each one starts
    // from the last converged solution instead of ambient.
    thermal::SteadyResult steady = _network->solveSteady(
        [&](const std::vector<double> &temps) {
            std::vector<double> powers(bp.size(), 0.0);
            for (std::size_t i = 0; i < bp.size(); ++i)
                powers[i] =
                    bp[i].dynamic_w * freq_ratio +
                    bp[i].sub_leak_w * _power->subLeakScaleAt(temps[i]) +
                    bp[i].fixed_w;
            return powers;
        },
        _steady_warm.empty() ? nullptr : &_steady_warm);
    if (steady.converged)
        _steady_warm = steady.temps_k;
    return steady;
}

KernelRun
Simulator::runThermal(const perf::KernelProgram &prog,
                      const perf::LaunchConfig &launch, bool with_trace,
                      double sample_interval_s, bool repeatable)
{
    ensureThermal();
    // Every kernel starts at the configured operating point; the
    // governor re-decides the clamp from this kernel's own power.
    if (_cfg.clocks.freq_scale != _nominal_freq_scale)
        applyFreqScale(_nominal_freq_scale);

    // Exploratory governor runs must not advance the carried
    // transient state twice: snapshot it, restore before re-runs.
    thermal::ThermalNetwork::State entry_state = _thermal_state;

    KernelRun run = runOnce(prog, launch, with_trace, sample_interval_s);
    std::vector<power::BlockPower> bp =
        _power->blockPowers(run.perf.activity);
    thermal::SteadyResult steady = solveSteady(bp, 1.0);

    const double limit = _cfg.thermal.t_limit_k;
    // The governor only judges die blocks (dieMax): the DRAM board
    // block runs from its own supply and clock (its power split is
    // fixed_w), so clamping the core clock cannot cool it — including
    // it would drive the clamp to the floor for a block throttling
    // can't fix.
    auto within = [&](const thermal::SteadyResult &s, double slack) {
        return s.converged && dieMax(s) <= limit + slack;
    };

    bool throttled = false;
    if (_cfg.thermal.throttle && !within(steady, 0.0)) {
        static obs::Counter &c_rounds =
            obs::Registry::instance().counter(
                "sim/governor_rounds",
                "throttle-governor refinement rounds executed");
        double f_meas = _nominal_freq_scale; // clock bp was measured at
        for (int round = 0; round < max_governor_rounds; ++round) {
            c_rounds.add(1);
            // Largest clock whose modeled steady state respects the
            // limit, by bisection on the measured power split.
            double lo = min_throttle_freq_scale;
            double hi = f_meas;
            double f_new = lo;
            if (within(solveSteady(bp, lo / f_meas), 0.0)) {
                for (int it = 0; it < governor_bisect_steps; ++it) {
                    double mid = 0.5 * (lo + hi);
                    if (within(solveSteady(bp, mid / f_meas), 0.0))
                        lo = mid;
                    else
                        hi = mid;
                }
                f_new = lo;
            }
            // else: even the floor overheats — clamp to the floor
            // and report the (non-)convergence faithfully.
            throttled = true;
            if (round > 0)
                f_new = std::max(min_throttle_freq_scale,
                                 f_new * governor_backoff);
            if (f_new >= f_meas * (1.0 - 1e-9)) {
                steady = solveSteady(bp, 1.0);
                break;
            }
            applyFreqScale(f_new);
            if (repeatable) {
                _thermal_state = entry_state;
                run = runOnce(prog, launch, with_trace,
                              sample_interval_s);
                bp = _power->blockPowers(run.perf.activity);
            } else {
                // Cannot legally re-execute: rescale the measured
                // run analytically — the cycle count stands, the
                // elapsed time stretches with the clock, and
                // re-evaluating over the stretched interval scales
                // every rate (and picks up the rebuilt V^2*f
                // base-power scale). The traces stretch the same
                // way so their integral keeps matching the report.
                double stretch = f_meas / f_new;
                run.perf.time_s *= stretch;
                run.perf.activity.elapsed_s *= stretch;
                for (PowerSample &s : run.trace) {
                    s.t0 *= stretch;
                    s.t1 *= stretch;
                    s.dynamic_w /= stretch;
                }
                for (ThermalSample &s : run.thermal.trace) {
                    s.t0 *= stretch;
                    s.t1 *= stretch;
                }
                bp = _power->blockPowers(run.perf.activity);
            }
            // Either way the new point is a measurement at f_new;
            // verify it and keep iterating until it truly holds —
            // near the leakage-stability boundary the linear clock
            // model is optimistic, and an unverified accept would
            // flip into a runaway result.
            f_meas = f_new;
            steady = solveSteady(bp, 1.0);
            if (within(steady, governor_slack_k))
                break;
        }
    }

    finishThermal(run, bp, steady, with_trace, throttled);
    return run;
}

} // namespace gpusimpow
