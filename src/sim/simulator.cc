#include "sim/simulator.hh"

#include "common/logging.hh"

namespace gpusimpow {

Simulator::Simulator(const GpuConfig &cfg) : _cfg(cfg)
{
    _gpu = std::make_unique<perf::Gpu>(_cfg);
    _power = std::make_unique<power::GpuPowerModel>(_cfg);
}

void
Simulator::recycle()
{
    _gpu->resetDeviceState();
}

KernelRun
Simulator::runKernel(const perf::KernelProgram &prog,
                     const perf::LaunchConfig &launch, bool with_trace,
                     double sample_interval_s)
{
    KernelRun run;

    perf::Gpu::SampleFn sampler;
    if (with_trace) {
        double static_w = _power->staticPower();
        sampler = [&, static_w](const perf::ChipActivity &delta,
                                double t0, double t1) {
            power::PowerReport rep = _power->evaluate(delta);
            PowerSample s;
            s.t0 = t0;
            s.t1 = t1;
            s.dynamic_w = rep.dynamicPower();
            s.static_w = static_w;
            s.dram_w = rep.dram_w;
            run.trace.push_back(s);
        };
    }

    run.perf = _gpu->run(prog, launch, sampler,
                         with_trace ? sample_interval_s : 0.0);
    run.report = _power->evaluate(run.perf.activity);
    return run;
}

} // namespace gpusimpow
