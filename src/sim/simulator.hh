/**
 * @file
 * The GPUSimPow top level (Fig. 1): couples the cycle-level
 * performance simulator (activity producer) with the GPGPU-Pow
 * power model (activity consumer) and returns combined results —
 * whole-kernel power reports plus optional power-over-time traces
 * for the measurement testbed.
 *
 * When the configuration enables the thermal subsystem the loop is
 * closed: a steady-state RC solve turns the kernel's power into
 * per-block junction temperatures, leakage is re-evaluated at those
 * temperatures, a transient integrator runs alongside the power
 * trace, and (optionally) a throttling governor clamps the core
 * clock until the hottest block respects the temperature limit.
 */

#ifndef GPUSIMPOW_SIM_SIMULATOR_HH
#define GPUSIMPOW_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "perf/gpu.hh"
#include "perf/kernel.hh"
#include "power/chip_power.hh"
#include "sim/snapshot.hh"
#include "thermal/thermal.hh"

namespace gpusimpow {

namespace power {
struct BatchedKernelPower;
}

/** One sampled point of a simulated power waveform. */
struct PowerSample
{
    /** Interval start, s. */
    double t0 = 0.0;
    /** Interval end, s. */
    double t1 = 0.0;
    /** Chip dynamic power over the interval, W. */
    double dynamic_w = 0.0;
    /** Chip static power, W (leakage at the transient block
     *  temperatures when the thermal subsystem is enabled). */
    double static_w = 0.0;
    /** External DRAM power, W. */
    double dram_w = 0.0;

    /** Card-level total (chip + DRAM), W. */
    double total() const { return dynamic_w + static_w + dram_w; }
};

/** One sampled point of the per-block temperature waveform. */
struct ThermalSample
{
    /** Interval start, s. */
    double t0 = 0.0;
    /** Interval end, s. */
    double t1 = 0.0;
    /** Node temperatures at the end of the interval, K: thermal
     *  blocks in BlockSet order, then the heatsink node. */
    std::vector<double> temps_k;
};

/** Thermal outcome of one kernel (empty unless thermal is enabled). */
struct ThermalResult
{
    /** True when the thermal subsystem ran for this kernel. */
    bool enabled = false;
    /** False on thermal runaway (no stable operating temperature at
     *  the applied clock): block_temps_k are clamped at the runaway
     *  cap, and the kernel report's leakage falls back to the
     *  nominal junction temperature, since no steady state exists
     *  to evaluate it at. */
    bool converged = false;
    /** True when the governor clamped the core clock. */
    bool throttled = false;
    /** Fixed-point iterations of the final steady solve. */
    unsigned iterations = 0;
    /** Hottest steady-state *die* block temperature, K. The DRAM
     *  board block (own supply, clock, and rating) is reported in
     *  block_temps_k but excluded here and from the throttling
     *  criterion — the core clock cannot cool it. */
    double t_max_k = 0.0;
    /** Steady-state heatsink temperature, K. */
    double heatsink_k = 0.0;
    /** Operating point the kernel actually ran at (freq_scale
     *  reflects any throttling clamp). */
    OperatingPoint op;
    /** Thermal block names (BlockSet order). */
    std::vector<std::string> block_names;
    /** Steady-state block temperatures, K (BlockSet order). */
    std::vector<double> block_temps_k;
    /** Transient temperature waveform (when tracing was on). */
    std::vector<ThermalSample> trace;

    /** Name of the hottest block. */
    std::string hottestBlock() const;
};

/** Combined result of simulating one kernel. */
struct KernelRun
{
    /** Performance-side results (cycles, activity). */
    perf::RunResult perf;
    /** Whole-kernel power report (Table V structure); leakage is
     *  evaluated at the solved block temperatures when the thermal
     *  subsystem is enabled. */
    power::PowerReport report;
    /** Power waveform when tracing was requested. */
    std::vector<PowerSample> trace;
    /** Thermal solve outcome (enabled == false otherwise). */
    ThermalResult thermal;
};

/** Facade over one simulated GPU and its power model. */
class Simulator
{
  public:
    explicit Simulator(const GpuConfig &cfg);
    ~Simulator();

    /** The performance-simulated GPU (memory setup, launches). */
    perf::Gpu &gpu() { return *_gpu; }

    /** The power model (static/area queries). */
    const power::GpuPowerModel &powerModel() const { return *_power; }

    /** Configuration in use (freq_scale reflects a live throttling
     *  clamp until the next kernel or recycle()). */
    const GpuConfig &config() const { return _cfg; }

    /**
     * Run one kernel and evaluate its power (and, when enabled, its
     * thermal behavior).
     * @param prog kernel program
     * @param launch launch geometry
     * @param with_trace also produce a sampled power waveform
     * @param sample_interval_s trace sampling period
     * @param repeatable the kernel may be re-executed with identical
     *        results — the throttling governor re-runs the kernel at
     *        the clamped clock when it may; otherwise it rescales
     *        the measured run analytically
     */
    KernelRun runKernel(const perf::KernelProgram &prog,
                        const perf::LaunchConfig &launch,
                        bool with_trace = false,
                        double sample_interval_s = 20e-6,
                        bool repeatable = true);

    /**
     * Phase 1 of the two-phase flow: run the kernel on the
     * performance simulator only, capturing every counter the power
     * and thermal phases consume — the whole-kernel activity, timing,
     * and (when with_trace is set) the per-interval activity deltas
     * behind power traces. No power is evaluated.
     */
    KernelSnapshot capturePerf(const perf::KernelProgram &prog,
                               const perf::LaunchConfig &launch,
                               bool with_trace = false,
                               double sample_interval_s = 20e-6);

    /**
     * Phase 2: evaluate power (and thermal behavior, when enabled)
     * from a phase-1 snapshot instead of running timing. For any
     * configuration sharing the snapshot's timing fingerprint
     * (sim::timingFingerprint) the result is bit-identical to
     * runKernel() — the power-only axes (process node, supply scale,
     * cooling solution) may differ freely between capture and replay.
     * fatal() on throttle-governed configurations: the governor's
     * power-to-clock feedback changes timing, which a replay cannot
     * reproduce; run those kernels in full.
     */
    KernelRun replayKernel(const KernelSnapshot &snap);

    /**
     * replayKernel() with this configuration's per-interval power
     * already computed by a BatchedPowerEvaluator over the
     * snapshot's samples (power/batched.hh): the trace loops consume
     * the precomputed dynamic/DRAM rows instead of re-running the
     * scalar per-interval evaluation, which is where a multi-variant
     * sweep replay spends its time. Bit-identical to
     * replayKernel(snap) by the batched evaluator's contract;
     * batched == nullptr is exactly replayKernel(snap).
     */
    KernelRun replayKernel(const KernelSnapshot &snap,
                           const power::BatchedKernelPower *batched);

    /**
     * Reset device-visible state so the next workload runs exactly as
     * it would on a freshly constructed Simulator, without rebuilding
     * the (expensive) power model. Restores the configured operating
     * point if the governor clamped it and discards all carried
     * thermal state. Only legal between kernels.
     */
    void recycle();

    /** Lowest freq_scale the throttling governor will clamp to. */
    static constexpr double min_throttle_freq_scale = 0.25;

  private:
    GpuConfig _cfg;
    std::unique_ptr<perf::Gpu> _gpu;
    std::unique_ptr<power::GpuPowerModel> _power;

    /** Configured (pre-throttle) core-clock scale. */
    double _nominal_freq_scale;
    /** Lazily built thermal network + block decomposition. */
    std::unique_ptr<thermal::ThermalNetwork> _network;
    thermal::BlockSet _blocks;
    /** Transient temperatures carried across kernels; reset by
     *  recycle() so simulator reuse stays bit-identical. */
    thermal::ThermalNetwork::State _thermal_state;
    /** Reusable workspace of the compiled power evaluator: the trace
     *  loops evaluate thousands of intervals per kernel with zero
     *  per-interval allocation. */
    power::CompiledPowerModel::Eval _eval;
    /** Per-block power scratch of the transient thermal march. */
    std::vector<double> _block_powers;
    /** Last converged steady-state block temperatures: the warm
     *  start for the next solveSteady. Scoped to one scenario —
     *  recycle() clears it with the rest of the thermal state, so
     *  simulator reuse stays deterministic. */
    std::vector<double> _steady_warm;
    /** Self-batching state of the traced thermal path: a
     *  single-variant BatchedPowerEvaluator over this simulator's
     *  compiled model plus its workspace/output buffers, built
     *  lazily and invalidated when the power model is rebuilt. */
    struct SelfBatch;
    std::unique_ptr<SelfBatch> _self_batch;

    void ensureThermal();
    void applyFreqScale(double freq_scale);
    /** Batch-evaluate a snapshot's intervals against this
     *  simulator's own compiled model (see SelfBatch). */
    const power::BatchedKernelPower &
    selfBatchRows(const KernelSnapshot &snap);
    /** Evaluate the per-interval power (and, with thermal on, march
     *  the transient state) over a snapshot's samples, plus the
     *  whole-kernel nominal-temperature report. When batched is
     *  non-null the per-interval values come from its precomputed
     *  rows instead of the scalar compiled evaluation. */
    KernelRun evaluateSamples(const KernelSnapshot &snap,
                              const power::BatchedKernelPower *batched);
    KernelRun runOnce(const perf::KernelProgram &prog,
                      const perf::LaunchConfig &launch,
                      bool with_trace, double sample_interval_s);
    /** Closed-loop steady solve, warm-started from (and, when it
     *  converges, refreshing) _steady_warm. */
    thermal::SteadyResult
    solveSteady(const std::vector<power::BlockPower> &bp,
                double freq_ratio);
    /** Hottest steady-state die-block temperature (DRAM excluded). */
    double dieMax(const thermal::SteadyResult &steady) const;
    /** Shared tail of every thermal kernel: re-evaluate the report at
     *  the solved temperatures, march the transient state when no
     *  trace already did, and fill the ThermalResult. */
    void finishThermal(KernelRun &run,
                       const std::vector<power::BlockPower> &bp,
                       const thermal::SteadyResult &steady,
                       bool with_trace, bool throttled);
    KernelRun runThermal(const perf::KernelProgram &prog,
                         const perf::LaunchConfig &launch,
                         bool with_trace, double sample_interval_s,
                         bool repeatable);
};

} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_SIMULATOR_HH
