/**
 * @file
 * The GPUSimPow top level (Fig. 1): couples the cycle-level
 * performance simulator (activity producer) with the GPGPU-Pow
 * power model (activity consumer) and returns combined results —
 * whole-kernel power reports plus optional power-over-time traces
 * for the measurement testbed.
 */

#ifndef GPUSIMPOW_SIM_SIMULATOR_HH
#define GPUSIMPOW_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "perf/gpu.hh"
#include "perf/kernel.hh"
#include "power/chip_power.hh"

namespace gpusimpow {

/** One sampled point of a simulated power waveform. */
struct PowerSample
{
    /** Interval start, s. */
    double t0 = 0.0;
    /** Interval end, s. */
    double t1 = 0.0;
    /** Chip dynamic power over the interval, W. */
    double dynamic_w = 0.0;
    /** Chip static power, W. */
    double static_w = 0.0;
    /** External DRAM power, W. */
    double dram_w = 0.0;

    /** Card-level total (chip + DRAM), W. */
    double total() const { return dynamic_w + static_w + dram_w; }
};

/** Combined result of simulating one kernel. */
struct KernelRun
{
    /** Performance-side results (cycles, activity). */
    perf::RunResult perf;
    /** Whole-kernel power report (Table V structure). */
    power::PowerReport report;
    /** Power waveform when tracing was requested. */
    std::vector<PowerSample> trace;
};

/** Facade over one simulated GPU and its power model. */
class Simulator
{
  public:
    explicit Simulator(const GpuConfig &cfg);

    /** The performance-simulated GPU (memory setup, launches). */
    perf::Gpu &gpu() { return *_gpu; }

    /** The power model (static/area queries). */
    const power::GpuPowerModel &powerModel() const { return *_power; }

    /** Configuration in use. */
    const GpuConfig &config() const { return _cfg; }

    /**
     * Run one kernel and evaluate its power.
     * @param prog kernel program
     * @param launch launch geometry
     * @param with_trace also produce a sampled power waveform
     * @param sample_interval_s trace sampling period
     */
    KernelRun runKernel(const perf::KernelProgram &prog,
                        const perf::LaunchConfig &launch,
                        bool with_trace = false,
                        double sample_interval_s = 20e-6);

    /**
     * Reset device-visible state so the next workload runs exactly as
     * it would on a freshly constructed Simulator, without rebuilding
     * the (expensive) power model. Only legal between kernels.
     */
    void recycle();

  private:
    GpuConfig _cfg;
    std::unique_ptr<perf::Gpu> _gpu;
    std::unique_ptr<power::GpuPowerModel> _power;
};

} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_SIMULATOR_HH
