/**
 * @file
 * SweepRequest: the one description of "what to sweep" shared by
 * every front end. The CLI's `--sweep` flags, the serve client's
 * command line, and the service's wire protocol all build one of
 * these; toSpec() performs the validation and expansion that used to
 * live (duplicated) in the CLI's flag plumbing — resolving presets,
 * parsing axis lists, rejecting empty axes and incoherent thermal
 * flags — so a request is checked identically no matter where it
 * came from. serialize()/parse() give it a stable text form for the
 * sweep service's job submission frames.
 */

#ifndef GPUSIMPOW_SIM_REQUEST_HH
#define GPUSIMPOW_SIM_REQUEST_HH

#include <string>
#include <utility>

#include "sim/sweep.hh"

namespace gpusimpow {
namespace sim {

/** Declarative sweep-job description (axis lists still in their
 *  user-facing comma-separated spelling). */
struct SweepRequest
{
    /** Wire-format magic of serialize()/parse(). */
    static constexpr const char *request_magic =
        "gpusimpow-sweep-request v1";

    /** Comma-separated GPU preset names (ignored with config_xml). */
    std::string gpus = "gt240";
    /** Inline XML configuration — a client ships file contents, not
     *  paths, so the server never touches the client filesystem. */
    std::string config_xml;
    /** Comma-separated workload names, or "all". */
    std::string workloads = "vectoradd";
    /** Comma-separated process nodes in nm ("" = no node axis). */
    std::string nodes;
    /** DVFS operating points, "V[:F],..." ("" = no DVFS axis). */
    std::string vf;
    /** Comma-separated cooling presets ("" = no thermal axis). */
    std::string coolings;
    /** Problem-size multiplier. */
    unsigned scale = 1;
    /** Run device-vs-host verification per scenario. */
    bool verify = true;
    /** Thermal scalars folded into every config when a cooling axis
     *  is present (the `_set` flags keep config defaults apart from
     *  an explicit request of the same value). */
    double ambient_k = 0.0;
    bool ambient_set = false;
    double t_limit_k = 0.0;
    bool t_limit_set = false;
    bool throttle = false;

    // ----- named setters, same idiom as EngineOptions -----

    SweepRequest &withGpus(std::string list)
    {
        gpus = std::move(list);
        return *this;
    }
    SweepRequest &withConfigXml(std::string xml)
    {
        config_xml = std::move(xml);
        return *this;
    }
    SweepRequest &withWorkloads(std::string list)
    {
        workloads = std::move(list);
        return *this;
    }
    SweepRequest &withNodes(std::string list)
    {
        nodes = std::move(list);
        return *this;
    }
    SweepRequest &withVf(std::string list)
    {
        vf = std::move(list);
        return *this;
    }
    SweepRequest &withCoolings(std::string list)
    {
        coolings = std::move(list);
        return *this;
    }
    SweepRequest &withScale(unsigned n)
    {
        scale = n;
        return *this;
    }
    SweepRequest &withVerify(bool on)
    {
        verify = on;
        return *this;
    }
    SweepRequest &withAmbient(double kelvin)
    {
        ambient_k = kelvin;
        ambient_set = true;
        return *this;
    }
    SweepRequest &withTLimit(double kelvin)
    {
        t_limit_k = kelvin;
        t_limit_set = true;
        return *this;
    }
    SweepRequest &withThrottle(bool on)
    {
        throttle = on;
        return *this;
    }

    /**
     * Validate and expand into an executable SweepSpec: presets and
     * workload names resolved, axis lists parsed with the same range
     * checks as the CLI flags, thermal scalars folded into every
     * configuration. fatal() on anything incoherent — an empty axis,
     * an unknown preset, thermal scalars without a cooling axis.
     */
    SweepSpec toSpec() const;

    /** Stable text form for service job frames. */
    std::string serialize() const;

    /** Parse a request written by serialize(); fatal() (with
     *  position context) on malformed input. */
    static SweepRequest parse(const std::string &text);
};

} // namespace sim
} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_REQUEST_HH
