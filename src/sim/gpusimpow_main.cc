/**
 * @file
 * The gpusimpow command-line tool — the user-facing entry point of
 * the framework, mirroring how the paper's released simulator is
 * driven: a GPU configuration (XML file or preset) plus a workload,
 * producing area/power reports, optional power-over-time traces, and
 * raw activity statistics.
 *
 * Usage:
 *   gpusimpow [options]
 *     --gpu gt240|gtx580        preset configuration (default gt240)
 *     --config FILE             XML configuration (overrides --gpu)
 *     --workload NAME           Table I benchmark (default vectoradd)
 *     --scale N                 problem-size multiplier (default 1)
 *     --vdd-scale X             DVFS supply scale (single run)
 *     --freq-scale X            DVFS core-clock scale (single run)
 *     --trace FILE.csv          write a sampled power waveform (plus
 *                               the per-block temperature waveform
 *                               when --cooling is active)
 *     --sample-us N             trace sampling period (default 20)
 *     --cooling NAME            enable the closed-loop thermal
 *                               subsystem with a cooling preset
 *                               (stock|constrained|liquid); in
 *                               --sweep mode a comma-separated list
 *                               becomes a sweep axis
 *     --ambient K               ambient (case air) temperature
 *                               (default 318; requires --cooling)
 *     --t-limit K               junction temperature limit (default
 *                               358; requires --cooling)
 *     --throttle                clamp the core clock when a block
 *                               exceeds --t-limit (requires --cooling)
 *     --thermal-integrator X    transient integration scheme,
 *                               exact|euler (default exact; requires
 *                               --cooling)
 *     --stats                   dump raw activity counters
 *     --static-only             print area/static report and exit
 *     --dump-config             print the effective XML and exit
 *     --list                    list available workloads and exit
 *     --sweep                   batch mode: run the cartesian product
 *                               of --gpu presets x --workload names
 *                               x --nodes x --vf on the engine
 *     --jobs N                  sweep worker threads (default: all
 *                               hardware threads)
 *     --no-memo                 disable two-phase snapshot
 *                               memoization in --sweep: every
 *                               scenario re-runs timing even when a
 *                               cached activity snapshot could
 *                               replay its power phase (results are
 *                               bit-identical either way)
 *     --nodes N,M               process nodes (nm) swept in --sweep
 *     --vf V[:F],...            DVFS operating points swept in
 *                               --sweep ("0.9" means V=F=0.9,
 *                               "0.9:0.8" sets them separately)
 *     --progress                live sweep progress on stderr
 *                               (done/total, replay-vs-capture
 *                               split, ETA; throttled to >= 100 ms)
 *     --trace-out FILE          record engine/simulator spans and
 *                               write them as Chrome trace_event
 *                               JSON (load in Perfetto); see
 *                               docs/observability.md
 *     --metrics-json FILE       dump the observability metrics as
 *                               JSON (with the sweep's telemetry
 *                               summary in --sweep mode)
 *     --store DIR               persistent snapshot store for --sweep:
 *                               captures are written to DIR and a
 *                               repeat sweep replays from it with
 *                               zero timing captures
 *
 * In --sweep mode --gpu and --workload accept comma-separated lists,
 * and --workload also accepts "all" (every Table I benchmark).
 *
 * Service subcommands (docs/sweep_service.md):
 *   gpusimpow serve --store DIR --port N [--jobs N] [--trace-out F]
 *     long-running sweep server: clients submit jobs, identical
 *     scenarios across concurrent jobs are captured once, repeat
 *     queries are answered from the store in O(lookup)
 *   gpusimpow submit [--host H] --port N [sweep axis flags...]
 *     run one sweep job on a server; streams per-scenario progress
 *     to stderr and prints the server's result table on stdout
 *     (byte-identical to a local --sweep of the same axes)
 *   gpusimpow stop-server [--host H] --port N
 *     ask a server to drain in-flight jobs and exit
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "sim/engine.hh"
#include "sim/request.hh"
#include "sim/session.hh"
#include "sim/simulator.hh"
#include "store/store.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

namespace {

/** Top-level mode: the classic tool, or a service subcommand. */
enum class Mode { tool, serve, submit, stop_server };

struct Options
{
    Mode mode = Mode::tool;
    std::string store_dir;
    std::string host = "127.0.0.1";
    unsigned port = 0;
    bool port_set = false;
    std::string gpu = "gt240";
    std::string config_file;
    std::string workload = "vectoradd";
    unsigned scale = 1;
    double vdd_scale = 1.0;
    double freq_scale = 1.0;
    bool vdd_scale_set = false;
    bool freq_scale_set = false;
    std::string trace_file;
    double sample_us = 20.0;
    bool sample_us_set = false;
    std::string cooling;
    double ambient_k = 0.0;
    bool ambient_set = false;
    double t_limit_k = 0.0;
    bool t_limit_set = false;
    bool throttle = false;
    std::string thermal_integrator;
    bool stats = false;
    bool static_only = false;
    bool dump_config = false;
    bool list = false;
    bool sweep = false;
    unsigned jobs = 0;
    bool no_memo = false;
    std::string nodes;
    std::string vf;
    bool progress = false;
    std::string trace_out_file;
    std::string metrics_json_file;
};

void
usage()
{
    std::printf(
        "usage: gpusimpow [--gpu gt240|gtx580] [--config FILE]\n"
        "                 [--workload NAME] [--scale N]\n"
        "                 [--vdd-scale X] [--freq-scale X]\n"
        "                 [--trace FILE.csv] [--sample-us N]\n"
        "                 [--cooling stock|constrained|liquid]\n"
        "                 [--ambient K] [--t-limit K] [--throttle]\n"
        "                 [--thermal-integrator exact|euler]\n"
        "                 [--stats] [--static-only] [--dump-config]\n"
        "                 [--list]\n"
        "                 [--sweep] [--jobs N] [--no-memo]\n"
        "                 [--nodes N,M] [--vf V[:F],...]\n"
        "                 [--progress] [--trace-out FILE]\n"
        "                 [--metrics-json FILE] [--store DIR]\n"
        "       gpusimpow serve --store DIR --port N [--jobs N]\n"
        "       gpusimpow submit [--host H] --port N [sweep flags]\n"
        "       gpusimpow stop-server [--host H] --port N\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    int first_flag = 1;
    if (argc > 1 && argv[1][0] != '-') {
        std::string sub = argv[1];
        if (sub == "serve")
            opt.mode = Mode::serve;
        else if (sub == "submit")
            opt.mode = Mode::submit;
        else if (sub == "stop-server")
            opt.mode = Mode::stop_server;
        else {
            usage();
            fatal("unknown subcommand '", sub, "'");
        }
        first_flag = 2;
    }
    for (int i = first_flag; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", flag);
            return argv[++i];
        };
        if (arg == "--gpu") {
            opt.gpu = need_value("--gpu");
        } else if (arg == "--config") {
            opt.config_file = need_value("--config");
        } else if (arg == "--workload") {
            opt.workload = need_value("--workload");
        } else if (arg == "--scale") {
            // Reject negatives outright: a silent unsigned cast would
            // turn "--scale -1" into a ~4.3-billion-x problem size.
            opt.scale = parseUnsigned(need_value("--scale"), "--scale",
                                      1, 1u << 20);
        } else if (arg == "--vdd-scale") {
            opt.vdd_scale = parseDouble(need_value("--vdd-scale"),
                                        "--vdd-scale");
            opt.vdd_scale_set = true;
        } else if (arg == "--freq-scale") {
            opt.freq_scale = parseDouble(need_value("--freq-scale"),
                                         "--freq-scale");
            opt.freq_scale_set = true;
        } else if (arg == "--trace") {
            opt.trace_file = need_value("--trace");
        } else if (arg == "--sample-us") {
            opt.sample_us =
                parseDouble(need_value("--sample-us"), "--sample-us");
            opt.sample_us_set = true;
            if (opt.sample_us <= 0.0)
                fatal("--sample-us must be > 0 (got ", opt.sample_us,
                      "); a non-positive period would record an empty "
                      "waveform");
        } else if (arg == "--cooling") {
            opt.cooling = need_value("--cooling");
        } else if (arg == "--ambient") {
            opt.ambient_k =
                parseDouble(need_value("--ambient"), "--ambient");
            opt.ambient_set = true;
            // Same bounds config::validate enforces, caught before a
            // simulation is built.
            if (!(opt.ambient_k > 200.0 && opt.ambient_k < 400.0))
                fatal("--ambient ", opt.ambient_k,
                      " K out of range (200, 400)");
        } else if (arg == "--t-limit") {
            opt.t_limit_k =
                parseDouble(need_value("--t-limit"), "--t-limit");
            opt.t_limit_set = true;
            if (!(opt.t_limit_k > 200.0 && opt.t_limit_k <= 500.0))
                fatal("--t-limit ", opt.t_limit_k,
                      " K out of range (200, 500]");
        } else if (arg == "--throttle") {
            opt.throttle = true;
        } else if (arg == "--thermal-integrator") {
            opt.thermal_integrator =
                need_value("--thermal-integrator");
            if (opt.thermal_integrator != "exact" &&
                opt.thermal_integrator != "euler")
                fatal("--thermal-integrator '", opt.thermal_integrator,
                      "' (expected exact or euler)");
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--static-only") {
            opt.static_only = true;
        } else if (arg == "--dump-config") {
            opt.dump_config = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--sweep") {
            opt.sweep = true;
        } else if (arg == "--jobs") {
            // 0 means "all hardware threads"; negatives must not wrap
            // into billions of workers.
            opt.jobs = parseUnsigned(need_value("--jobs"), "--jobs", 0,
                                     sim::EngineOptions::max_jobs);
        } else if (arg == "--store") {
            opt.store_dir = need_value("--store");
        } else if (arg == "--port") {
            opt.port = parseUnsigned(need_value("--port"), "--port", 1,
                                     65535);
            opt.port_set = true;
        } else if (arg == "--host") {
            opt.host = need_value("--host");
        } else if (arg == "--no-memo") {
            opt.no_memo = true;
        } else if (arg == "--nodes") {
            opt.nodes = need_value("--nodes");
        } else if (arg == "--vf") {
            opt.vf = need_value("--vf");
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--trace-out") {
            opt.trace_out_file = need_value("--trace-out");
        } else if (arg == "--metrics-json") {
            opt.metrics_json_file = need_value("--metrics-json");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }
    return opt;
}

GpuConfig
resolveConfig(const Options &opt)
{
    if (!opt.config_file.empty())
        return GpuConfig::fromXmlFile(opt.config_file);
    if (opt.gpu == "gt240")
        return GpuConfig::gt240();
    if (opt.gpu == "gtx580")
        return GpuConfig::gtx580();
    fatal("unknown GPU preset '", opt.gpu,
          "' (expected gt240 or gtx580)");
}

/** Open an observability output file up front: a mistyped path must
 *  fail before the run, not after the results are gone. */
std::ofstream
openObsFile(const std::string &path, const char *flag)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open ", flag, " file '", path, "'");
    return out;
}

/**
 * Owns the --trace-out/--metrics-json outputs: opens both files (and
 * enables span recording) on construction, writes them on scope
 * exit — which covers every return path, including fatal() unwinds.
 * Sweep mode substitutes the richer SweepTelemetry document for the
 * plain registry dump via setMetricsDocument().
 */
class ObsWriter
{
  public:
    explicit ObsWriter(const Options &opt)
    {
        if (!opt.trace_out_file.empty()) {
            _trace = openObsFile(opt.trace_out_file, "--trace-out");
            obs::Tracer::instance().setEnabled(true);
        }
        if (!opt.metrics_json_file.empty())
            _metrics =
                openObsFile(opt.metrics_json_file, "--metrics-json");
    }

    ~ObsWriter()
    {
        if (_trace.is_open())
            obs::Tracer::instance().writeChromeTrace(_trace);
        if (_metrics.is_open())
            _metrics << (_metrics_doc.empty()
                             ? obs::Registry::instance()
                                   .snapshot()
                                   .toJson()
                             : _metrics_doc);
    }

    ObsWriter(const ObsWriter &) = delete;
    ObsWriter &operator=(const ObsWriter &) = delete;

    void setMetricsDocument(std::string doc)
    {
        _metrics_doc = std::move(doc);
    }

  private:
    std::ofstream _trace;
    std::ofstream _metrics;
    std::string _metrics_doc;
};

/**
 * --progress: a live status line on stderr, throttled to one update
 * per 100 ms (plus the final one). The replay-vs-capture split reads
 * the observability counters against a baseline taken at
 * construction, so a previous run in the same process cannot leak
 * into the display. The engine serializes progress callbacks, so the
 * mutable state needs no lock.
 */
class ProgressPrinter
{
  public:
    ProgressPrinter()
        : _c_replayed(obs::Registry::instance().counter(
              "engine/scenarios_replayed")),
          _c_captured(obs::Registry::instance().counter(
              "engine/scenarios_captured")),
          _base_replayed(_c_replayed.value()),
          _base_captured(_c_captured.value()),
          _t0_ns(obs::monotonicNs())
    {}

    void operator()(const sim::ScenarioResult &, std::size_t done,
                    std::size_t total)
    {
        uint64_t now = obs::monotonicNs();
        if (done < total && now - _last_ns < 100000000ull)
            return;
        _last_ns = now;
        double elapsed_s =
            static_cast<double>(now - _t0_ns) * 1e-9;
        double eta_s =
            done ? elapsed_s *
                       static_cast<double>(total - done) /
                       static_cast<double>(done)
                 : 0.0;
        std::fprintf(
            stderr,
            "progress: %zu/%zu (%llu replayed, %llu captured), "
            "%.1f s elapsed, ETA %.1f s\n",
            done, total,
            static_cast<unsigned long long>(_c_replayed.value() -
                                            _base_replayed),
            static_cast<unsigned long long>(_c_captured.value() -
                                            _base_captured),
            elapsed_s, eta_s);
    }

  private:
    obs::Counter &_c_replayed;
    obs::Counter &_c_captured;
    uint64_t _base_replayed;
    uint64_t _base_captured;
    uint64_t _t0_ns;
    uint64_t _last_ns = 0;
};

/** The thermal tuning flags mean nothing without the subsystem on. */
void
checkThermalFlagDeps(const Options &opt)
{
    if (opt.cooling.empty() &&
        (opt.ambient_set || opt.t_limit_set || opt.throttle ||
         !opt.thermal_integrator.empty()))
        fatal("--ambient/--t-limit/--throttle/--thermal-integrator "
              "require --cooling");
}

/** Fold --ambient/--t-limit/--throttle into a config's thermal
 *  section and cross-check the resulting pair. */
void
applyThermalScalars(const Options &opt, GpuConfig &cfg)
{
    if (opt.ambient_set)
        cfg.thermal.ambient_k = opt.ambient_k;
    if (opt.t_limit_set)
        cfg.thermal.t_limit_k = opt.t_limit_k;
    if (opt.throttle)
        cfg.thermal.throttle = true;
    if (!opt.thermal_integrator.empty())
        cfg.thermal.integrator = opt.thermal_integrator;
    if (cfg.thermal.t_limit_k <= cfg.thermal.ambient_k)
        fatal("--t-limit (", cfg.thermal.t_limit_k,
              " K) must exceed the ambient temperature (",
              cfg.thermal.ambient_k, " K)");
}

/** Read a file into a string; fatal() when unreadable. */
std::string
readWholeFile(const std::string &path, const char *flag)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open ", flag, " file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Fold the sweep-axis flags into a SweepRequest — the one
 * flag-to-spec translation, shared verbatim by `--sweep` and the
 * `submit` client path (which ships the request over the wire
 * instead of expanding it locally).
 */
sim::SweepRequest
requestFromOptions(const Options &opt)
{
    sim::SweepRequest req;
    req.withGpus(opt.gpu)
        .withWorkloads(opt.workload)
        .withNodes(opt.nodes)
        .withVf(opt.vf)
        .withCoolings(opt.cooling)
        .withScale(opt.scale);
    // Ship file contents, not paths: a submit's server never sees
    // the client filesystem.
    if (!opt.config_file.empty())
        req.withConfigXml(readWholeFile(opt.config_file, "--config"));
    if (opt.ambient_set)
        req.withAmbient(opt.ambient_k);
    if (opt.t_limit_set)
        req.withTLimit(opt.t_limit_k);
    if (opt.throttle)
        req.withThrottle(true);
    return req;
}

/** The sweep/submit modes share one set of flag incompatibilities. */
void
checkSweepFlagDeps(const Options &opt, const char *mode)
{
    // Per-kernel outputs make no sense across a whole sweep; reject
    // the combination instead of silently ignoring the flag.
    if (!opt.trace_file.empty())
        fatal("--trace is not supported with ", mode);
    if (opt.sample_us_set)
        fatal("--sample-us is not supported with ", mode);
    if (opt.stats)
        fatal("--stats is not supported with ", mode);
    if (opt.static_only)
        fatal("--static-only is not supported with ", mode);
    if (opt.dump_config)
        fatal("--dump-config is not supported with ", mode);
    if (opt.vdd_scale_set || opt.freq_scale_set)
        fatal("--vdd-scale/--freq-scale apply to single runs; use "
              "--vf V[:F],... to sweep operating points");
    // The integrator changes no steady-state result, so a sweep axis
    // for it would only produce duplicate rows; set
    // thermal.integrator in --config XML to pin it for a sweep.
    if (!opt.thermal_integrator.empty())
        fatal("--thermal-integrator applies to single runs; set "
              "thermal.integrator in --config XML for ", mode);
}

void
printSweepHeader(const sim::SweepSpec &spec, unsigned workers)
{
    std::printf("sweep: %zu configs x %zu workloads",
                spec.configs.size(), spec.workloads.size());
    if (!spec.tech_nodes.empty())
        std::printf(" x %zu nodes", spec.tech_nodes.size());
    if (!spec.operating_points.empty())
        std::printf(" x %zu operating points",
                    spec.operating_points.size());
    if (!spec.coolings.empty())
        std::printf(" x %zu coolings", spec.coolings.size());
    std::printf(" = %zu scenarios on %u worker(s)\n\n", spec.size(),
                workers);
}

int
runSweep(const Options &opt)
{
    checkSweepFlagDeps(opt, "--sweep");

    sim::SweepRequest request = requestFromOptions(opt);
    sim::SweepSpec spec = request.toSpec();

    ObsWriter obs_writer(opt);

    sim::EngineOptions eopt =
        sim::EngineOptions().withJobs(opt.jobs).withMemoize(
            !opt.no_memo);
    // ProgressPrinter outlives the run; the engine only calls the
    // hook while workers are draining inside it.
    ProgressPrinter printer;
    std::function<void(const sim::ScenarioResult &, std::size_t,
                       std::size_t)>
        on_result;
    if (opt.progress)
        on_result = [&printer](const sim::ScenarioResult &r,
                               std::size_t done, std::size_t total) {
            printer(r, done, total);
        };

    store::StoreHandle store_handle;
    if (!opt.store_dir.empty())
        store_handle = store::openStore(opt.store_dir);
    sim::SweepSession session(eopt, store_handle);

    printSweepHeader(spec, session.jobs());

    sim::SweepResult result = session.submit(spec, on_result);
    // Stats go to stderr so a memoized table diffs clean against a
    // --no-memo one (the CI smoke check relies on that). The numbers
    // come from the run's telemetry — the same values --metrics-json
    // dumps — so they exist in exactly one place.
    const sim::SweepTelemetry &telemetry = result.telemetry();
    std::fprintf(stderr, "memoized replay: %zu of %zu scenario(s)\n",
                 telemetry.replayed, telemetry.scenarios);
    obs_writer.setMetricsDocument(telemetry.toJson());
    std::fputs(result.formatTable().c_str(), stdout);
    std::printf("\ntotal simulated time: %.3f ms\n",
                result.totalSimulatedTime() * 1e3);

    for (const sim::ScenarioResult &r : result.rows())
        if (!r.verified)
            return 1;
    return 0;
}

int
runServe(const Options &opt)
{
    if (!opt.port_set)
        fatal("serve requires --port");
    if (opt.store_dir.empty())
        fatal("serve requires --store (a server without persistence "
              "would forget every capture on exit)");
    if (opt.no_memo)
        fatal("--no-memo is not supported with serve; the store can "
              "only feed the memoized replay path");
    checkSweepFlagDeps(opt, "serve");
    if (opt.progress)
        fatal("--progress applies to client runs, not serve");

    // The ObsWriter flushes --trace-out/--metrics-json when serve
    // returns (after a stop-server drain) — how the CI smoke job
    // gets a validated server-side trace.
    ObsWriter obs_writer(opt);

    auto session = std::make_shared<sim::SweepSession>(
        sim::EngineOptions().withJobs(opt.jobs),
        store::openStore(opt.store_dir));
    service::SweepServer server(session,
                                static_cast<uint16_t>(opt.port));
    std::printf("serving sweeps on 127.0.0.1:%u (store %s, %u "
                "worker(s) per job)\n",
                server.port(), opt.store_dir.c_str(),
                session->jobs());
    std::fflush(stdout);
    server.run();
    std::printf("server drained, store %s has %zu entries\n",
                opt.store_dir.c_str(),
                session->storeHandle()->size());
    return 0;
}

int
runSubmit(const Options &opt)
{
    if (!opt.port_set)
        fatal("submit requires --port");
    checkSweepFlagDeps(opt, "submit");
    if (opt.jobs != 0)
        fatal("--jobs is chosen by the server; it does not apply to "
              "submit");
    if (opt.no_memo)
        fatal("--no-memo does not apply to submit (memoization "
              "policy is the server's)");
    if (!opt.store_dir.empty())
        fatal("--store does not apply to submit (the store lives "
              "with the server)");

    sim::SweepRequest request = requestFromOptions(opt);

    ObsWriter obs_writer(opt);
    service::SweepClient client(opt.host,
                                static_cast<uint16_t>(opt.port));
    service::SweepClient::JobResult job = client.submitJob(
        request, [&](const std::string &row) {
            if (opt.progress)
                std::fprintf(stderr, "progress: %s\n", row.c_str());
        });
    if (!job.ok)
        fatal("submit: ", job.error);

    // The metrics document is the server's telemetry for this job,
    // verbatim — so tools/check_trace.py asserts the same
    // engine/store counters a local --sweep would dump.
    obs_writer.setMetricsDocument(job.metrics_json);
    std::fputs(job.table.c_str(), stdout);
    return 0;
}

int
runStopServer(const Options &opt)
{
    if (!opt.port_set)
        fatal("stop-server requires --port");
    service::SweepClient client(opt.host,
                                static_cast<uint16_t>(opt.port));
    if (!client.shutdownServer())
        fatal("stop-server: no acknowledgement from ", opt.host, ":",
              opt.port);
    std::printf("server at %s:%u is draining\n", opt.host.c_str(),
                opt.port);
    return 0;
}

int
runTool(const Options &opt)
{
    if (opt.mode == Mode::serve)
        return runServe(opt);
    if (opt.mode == Mode::submit)
        return runSubmit(opt);
    if (opt.mode == Mode::stop_server)
        return runStopServer(opt);
    if (opt.sweep)
        return runSweep(opt);

    // Symmetric to runSweep's checks: sweep/service-only flags are
    // rejected, not silently ignored, outside --sweep.
    if (opt.jobs != 0)
        fatal("--jobs requires --sweep");
    if (opt.no_memo)
        fatal("--no-memo requires --sweep");
    if (!opt.nodes.empty())
        fatal("--nodes requires --sweep");
    if (!opt.vf.empty())
        fatal("--vf requires --sweep; use --vdd-scale/--freq-scale "
              "for a single run");
    if (opt.progress)
        fatal("--progress requires --sweep");
    if (!opt.store_dir.empty())
        fatal("--store requires --sweep (or the serve subcommand)");
    if (opt.port_set)
        fatal("--port applies to the serve/submit/stop-server "
              "subcommands");

    // Single runs observe too: spans from the simulator layers and a
    // plain registry dump (no sweep telemetry to report).
    ObsWriter obs_writer(opt);

    if (opt.list) {
        std::printf("available workloads:\n");
        for (auto &wl : workloads::makeAllWorkloads()) {
            std::printf("  %-14s %s (%s)\n", wl->name().c_str(),
                        wl->description().c_str(),
                        wl->origin().c_str());
        }
        return 0;
    }

    GpuConfig cfg = resolveConfig(opt);
    if (opt.vdd_scale_set || opt.freq_scale_set) {
        OperatingPoint op{opt.vdd_scale, opt.freq_scale};
        op.applyTo(cfg); // validates the ranges
    }
    checkThermalFlagDeps(opt);
    if (!opt.cooling.empty()) {
        cfg.thermal.applyCooling(opt.cooling);
        applyThermalScalars(opt, cfg);
    }
    if (opt.dump_config) {
        std::fputs(cfg.toXml().c_str(), stdout);
        return 0;
    }

    Simulator sim(cfg);
    if (opt.static_only) {
        std::printf("%s\n",
                    sim.powerModel().staticReport().format().c_str());
        std::printf("peak dynamic power: %.1f W\n",
                    sim.powerModel().peakDynamicPower());
        return 0;
    }

    auto wl = workloads::makeWorkload(opt.workload, opt.scale);
    auto launches = wl->prepare(sim.gpu());

    std::ofstream trace_out;
    bool tracing = !opt.trace_file.empty();
    std::vector<std::string> thermal_blocks;
    if (cfg.thermal.enabled)
        thermal_blocks = sim.powerModel().thermalBlocks().names;
    if (tracing) {
        trace_out.open(opt.trace_file);
        if (!trace_out)
            fatal("cannot open trace file '", opt.trace_file, "'");
        trace_out << "kernel,t0_s,t1_s,dynamic_w,static_w,dram_w";
        if (cfg.thermal.enabled) {
            trace_out << ",tmax_k";
            for (const std::string &name : thermal_blocks)
                trace_out << ",T_" << name << "_k";
            trace_out << ",T_heatsink_k";
        }
        trace_out << '\n';
    }

    std::printf("%s on %s (%u cores, %u nm", opt.workload.c_str(),
                cfg.name.c_str(), cfg.numCores(), cfg.tech.node_nm);
    if (!cfg.operatingPoint().isIdentity())
        std::printf(", %s: %.3f V, %.0f MHz shader",
                    cfg.operatingPoint().label().c_str(),
                    sim.powerModel().techNode().vdd,
                    cfg.clocks.shaderHz() / 1e6);
    std::printf(")\n\n");

    double total_energy_j = 0.0;
    double total_time_s = 0.0;
    for (const auto &kl : launches) {
        KernelRun run = sim.runKernel(kl.prog, kl.launch, tracing,
                                      opt.sample_us * 1e-6,
                                      kl.repeatable);
        double card_w = run.report.totalPower() + run.report.dram_w;
        total_energy_j += card_w * run.perf.time_s;
        total_time_s += run.perf.time_s;
        std::printf("kernel %-14s %9lu cycles %9.1f us  dyn %6.2f W  "
                    "total %6.2f W (card %6.2f W)\n",
                    kl.label.c_str(),
                    static_cast<unsigned long>(run.perf.cycles),
                    run.perf.time_s * 1e6, run.report.dynamicPower(),
                    run.report.totalPower(), card_w);
        if (run.thermal.enabled) {
            std::printf("  thermal: Tmax %.1f K (%s), heatsink "
                        "%.1f K%s%s\n",
                        run.thermal.t_max_k,
                        run.thermal.hottestBlock().c_str(),
                        run.thermal.heatsink_k,
                        run.thermal.throttled
                            ? strformat(", THROTTLED x%.3g",
                                        run.thermal.op.freq_scale)
                                  .c_str()
                            : "",
                        run.thermal.converged ? ""
                                              : ", THERMAL RUNAWAY");
        }
        if (tracing) {
            for (std::size_t i = 0; i < run.trace.size(); ++i) {
                const PowerSample &s = run.trace[i];
                trace_out << kl.label << ',' << s.t0 << ',' << s.t1
                          << ',' << s.dynamic_w << ',' << s.static_w
                          << ',' << s.dram_w;
                if (run.thermal.enabled &&
                    i < run.thermal.trace.size()) {
                    const ThermalSample &ts = run.thermal.trace[i];
                    // Die blocks only, consistent with the reported
                    // t_max_k (the dram block is last).
                    double tmax = 0.0;
                    for (std::size_t b = 0;
                         b + 1 < thermal_blocks.size(); ++b)
                        tmax = std::max(tmax, ts.temps_k[b]);
                    trace_out << ',' << tmax;
                    for (double t : ts.temps_k)
                        trace_out << ',' << t;
                }
                trace_out << '\n';
            }
        }
        if (opt.stats)
            std::fputs(run.perf.activity.format().c_str(), stdout);
    }

    std::printf("\nbenchmark total: %.3f ms, %.3f mJ, verification %s\n",
                total_time_s * 1e3, total_energy_j * 1e3,
                wl->verify(sim.gpu()) ? "PASS" : "FAIL");

    std::printf("\n%s", "power report of the last kernel:\n");
    // Re-evaluate for a compact chip-level view.
    std::printf("static %.2f W, area %.1f mm2, peak dynamic %.1f W\n",
                sim.powerModel().staticPower(), sim.powerModel().area(),
                sim.powerModel().peakDynamicPower());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runTool(parseArgs(argc, argv));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "gpusimpow: fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpusimpow: %s\n", e.what());
        return 1;
    }
}
