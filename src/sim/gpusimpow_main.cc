/**
 * @file
 * The gpusimpow command-line tool — the user-facing entry point of
 * the framework, mirroring how the paper's released simulator is
 * driven: a GPU configuration (XML file or preset) plus a workload,
 * producing area/power reports, optional power-over-time traces, and
 * raw activity statistics.
 *
 * Usage:
 *   gpusimpow [options]
 *     --gpu gt240|gtx580        preset configuration (default gt240)
 *     --config FILE             XML configuration (overrides --gpu)
 *     --workload NAME           Table I benchmark (default vectoradd)
 *     --scale N                 problem-size multiplier (default 1)
 *     --trace FILE.csv          write a sampled power waveform
 *     --sample-us N             trace sampling period (default 20)
 *     --stats                   dump raw activity counters
 *     --static-only             print area/static report and exit
 *     --dump-config             print the effective XML and exit
 *     --list                    list available workloads and exit
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace gpusimpow;

namespace {

struct Options
{
    std::string gpu = "gt240";
    std::string config_file;
    std::string workload = "vectoradd";
    unsigned scale = 1;
    std::string trace_file;
    double sample_us = 20.0;
    bool stats = false;
    bool static_only = false;
    bool dump_config = false;
    bool list = false;
};

void
usage()
{
    std::printf(
        "usage: gpusimpow [--gpu gt240|gtx580] [--config FILE]\n"
        "                 [--workload NAME] [--scale N]\n"
        "                 [--trace FILE.csv] [--sample-us N]\n"
        "                 [--stats] [--static-only] [--dump-config]\n"
        "                 [--list]\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", flag);
            return argv[++i];
        };
        if (arg == "--gpu") {
            opt.gpu = need_value("--gpu");
        } else if (arg == "--config") {
            opt.config_file = need_value("--config");
        } else if (arg == "--workload") {
            opt.workload = need_value("--workload");
        } else if (arg == "--scale") {
            opt.scale = static_cast<unsigned>(
                parseLong(need_value("--scale"), "--scale"));
        } else if (arg == "--trace") {
            opt.trace_file = need_value("--trace");
        } else if (arg == "--sample-us") {
            opt.sample_us =
                parseDouble(need_value("--sample-us"), "--sample-us");
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--static-only") {
            opt.static_only = true;
        } else if (arg == "--dump-config") {
            opt.dump_config = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }
    return opt;
}

GpuConfig
resolveConfig(const Options &opt)
{
    if (!opt.config_file.empty())
        return GpuConfig::fromXmlFile(opt.config_file);
    if (opt.gpu == "gt240")
        return GpuConfig::gt240();
    if (opt.gpu == "gtx580")
        return GpuConfig::gtx580();
    fatal("unknown GPU preset '", opt.gpu,
          "' (expected gt240 or gtx580)");
}

int
runTool(const Options &opt)
{
    if (opt.list) {
        std::printf("available workloads:\n");
        for (auto &wl : workloads::makeAllWorkloads()) {
            std::printf("  %-14s %s (%s)\n", wl->name().c_str(),
                        wl->description().c_str(),
                        wl->origin().c_str());
        }
        return 0;
    }

    GpuConfig cfg = resolveConfig(opt);
    if (opt.dump_config) {
        std::fputs(cfg.toXml().c_str(), stdout);
        return 0;
    }

    Simulator sim(cfg);
    if (opt.static_only) {
        std::printf("%s\n",
                    sim.powerModel().staticReport().format().c_str());
        std::printf("peak dynamic power: %.1f W\n",
                    sim.powerModel().peakDynamicPower());
        return 0;
    }

    auto wl = workloads::makeWorkload(opt.workload, opt.scale);
    auto launches = wl->prepare(sim.gpu());

    std::ofstream trace_out;
    bool tracing = !opt.trace_file.empty();
    if (tracing) {
        trace_out.open(opt.trace_file);
        if (!trace_out)
            fatal("cannot open trace file '", opt.trace_file, "'");
        trace_out << "kernel,t0_s,t1_s,dynamic_w,static_w,dram_w\n";
    }

    std::printf("%s on %s (%u cores, %u nm)\n\n", opt.workload.c_str(),
                cfg.name.c_str(), cfg.numCores(), cfg.tech.node_nm);

    double total_energy_j = 0.0;
    double total_time_s = 0.0;
    for (const auto &kl : launches) {
        KernelRun run = sim.runKernel(kl.prog, kl.launch, tracing,
                                      opt.sample_us * 1e-6);
        double card_w = run.report.totalPower() + run.report.dram_w;
        total_energy_j += card_w * run.perf.time_s;
        total_time_s += run.perf.time_s;
        std::printf("kernel %-14s %9lu cycles %9.1f us  dyn %6.2f W  "
                    "total %6.2f W (card %6.2f W)\n",
                    kl.label.c_str(),
                    static_cast<unsigned long>(run.perf.cycles),
                    run.perf.time_s * 1e6, run.report.dynamicPower(),
                    run.report.totalPower(), card_w);
        if (tracing) {
            for (const PowerSample &s : run.trace) {
                trace_out << kl.label << ',' << s.t0 << ',' << s.t1
                          << ',' << s.dynamic_w << ',' << s.static_w
                          << ',' << s.dram_w << '\n';
            }
        }
        if (opt.stats)
            std::fputs(run.perf.activity.format().c_str(), stdout);
    }

    std::printf("\nbenchmark total: %.3f ms, %.3f mJ, verification %s\n",
                total_time_s * 1e3, total_energy_j * 1e3,
                wl->verify(sim.gpu()) ? "PASS" : "FAIL");

    std::printf("\n%s", "power report of the last kernel:\n");
    // Re-evaluate for a compact chip-level view.
    std::printf("static %.2f W, area %.1f mm2, peak dynamic %.1f W\n",
                sim.powerModel().staticPower(), sim.powerModel().area(),
                sim.powerModel().peakDynamicPower());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runTool(parseArgs(argc, argv));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "gpusimpow: fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpusimpow: %s\n", e.what());
        return 1;
    }
}
