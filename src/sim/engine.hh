/**
 * @file
 * The batch simulation engine: executes every scenario of a SweepSpec
 * on a fixed-size pool of worker threads. Scenarios are independent
 * (each worker owns a private Simulator and Workload instance), so
 * throughput scales with the worker count while results stay
 * bit-identical to a single-threaded run: workers pull scenario
 * indices from a shared atomic cursor and publish into per-index
 * slots of the SweepResult, and any worker exception is re-thrown
 * deterministically (lowest scenario index wins) after the pool has
 * drained.
 *
 * Workers recycle their Simulator across scenarios that share an
 * identical (config, node, operating point) fingerprint — the
 * workload-innermost expansion order makes that the common case — so
 * workload-only sweeps build each power model once per worker instead
 * of once per scenario. Device state is reset between scenarios, so
 * reuse is observationally identical to a fresh Simulator.
 *
 * On top of that sits the two-phase memoization: the first scenario
 * of each Scenario::snapshotKey() runs timing and publishes its
 * ActivitySnapshot into a cross-worker cache; every later scenario
 * that differs only in power-only axes (process node, vdd_scale,
 * cooling) replays the power phase from that snapshot — bit-identical
 * to a full run, minus the entire timing simulation.
 *
 * With batch_replay (the default) the memoized variants of one
 * snapshot key are scheduled as a single work unit and their traced
 * intervals are evaluated together through the batched matrix
 * evaluator — many intervals x many power variants per pass — which
 * also removes the legacy cache's duplicated-capture race between
 * workers that start the same key concurrently.
 */

#ifndef GPUSIMPOW_SIM_ENGINE_HH
#define GPUSIMPOW_SIM_ENGINE_HH

#include <functional>
#include <memory>

#include "sim/sweep.hh"

namespace gpusimpow {
namespace sim {

/**
 * Tuning knobs of the SimulationEngine (and, through SweepSession,
 * of every sweep entry point in the tree).
 *
 * One construction idiom everywhere: chain the named setters and let
 * the consumer (SimulationEngine / SweepSession) call validate() —
 * an incoherent combination fails with a fatal() naming both knobs
 * instead of being silently reinterpreted.
 *
 *     auto opt = EngineOptions()
 *                    .withJobs(4)
 *                    .withMemoize(false)
 *                    .withTrace(true, 10e-6);
 */
struct EngineOptions
{
    /** Hard worker cap: above this, thread overhead only hurts. */
    static constexpr unsigned max_jobs = 1024;

    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Also produce sampled power waveforms per kernel. */
    bool with_trace = false;
    /** Trace sampling period, s. */
    double sample_interval_s = 20e-6;
    /**
     * Recycle a worker's Simulator (and with it the expensive power
     * model) across scenarios whose (config, node, operating point)
     * fingerprints are identical, instead of rebuilding it per
     * scenario. Results are bit-identical either way — the knob
     * exists for benchmarking the rebuild cost (bench_sweep_throughput)
     * and as an escape hatch.
     */
    bool reuse_simulators = true;
    /**
     * Memoize phase-1 activity snapshots across scenarios (and
     * workers): a scenario whose Scenario::snapshotKey() has already
     * been simulated in this run replays its power phase from the
     * cached snapshot instead of re-running timing — the
     * order-of-magnitude lever on sweeps over the power-only axes
     * (process node, vdd_scale, cooling). Scenarios under a
     * throttling governor always fall back to full simulation
     * (power-to-timing feedback). Results are bit-identical either
     * way; `gpusimpow --sweep --no-memo` is the CLI escape hatch.
     */
    bool memoize = true;
    /**
     * Replay all memoized power-only variants of a timing-unique
     * snapshot together: the engine groups scenarios by
     * Scenario::snapshotKey(), the first scenario of each group runs
     * timing once, and the rest evaluate their traced intervals
     * through the batched matrix evaluator (power/batched.hh) in one
     * pass instead of re-walking the scalar per-interval loop per
     * variant. Only scheduling and throughput change — every result
     * is bit-identical with the knob on or off (the batched
     * evaluator's contract, asserted by test_batched_power). Ignored
     * unless memoize is also set.
     */
    bool batch_replay = true;
    /**
     * Called after each scenario finishes (from worker threads, but
     * serialized by the engine): finished result, completed count,
     * total count. Completion order is nondeterministic; only use
     * this for progress display.
     */
    std::function<void(const ScenarioResult &, std::size_t,
                       std::size_t)> progress;

    /**
     * External snapshot provider, consulted (when set, and memoize is
     * on) before the engine captures a replayable scenario's timing:
     * return a snapshot captured under the same Scenario::snapshotKey()
     * and the whole work unit replays from it — zero timing cost;
     * return nullptr and the engine captures as usual. This is how
     * SweepSession plugs the persistent store and its cross-job
     * in-flight dedupe under the scheduler; the call may block (e.g.
     * waiting for another job's in-flight capture of the same key).
     */
    std::function<std::shared_ptr<const ActivitySnapshot>(
        const Scenario &)> snapshot_source;

    /**
     * Called once per snapshot the engine captured after the source
     * declined (snapshot non-null), and once with nullptr if that
     * capture failed — so a source that registered in-flight state on
     * the miss is always released. Runs on worker threads; must be
     * thread-safe. Failures to persist must be handled inside the
     * sink (warn, never throw).
     */
    std::function<void(const Scenario &,
                       const std::shared_ptr<const ActivitySnapshot> &)>
        snapshot_sink;

    // ----- named setters: the one construction idiom -----

    EngineOptions &withJobs(unsigned n) { jobs = n; return *this; }
    EngineOptions &withTrace(bool on, double interval_s = 20e-6)
    {
        with_trace = on;
        sample_interval_s = interval_s;
        return *this;
    }
    EngineOptions &withReuseSimulators(bool on)
    {
        reuse_simulators = on;
        return *this;
    }
    EngineOptions &withMemoize(bool on) { memoize = on; return *this; }
    EngineOptions &withBatchReplay(bool on)
    {
        batch_replay = on;
        return *this;
    }
    EngineOptions &withProgress(
        std::function<void(const ScenarioResult &, std::size_t,
                           std::size_t)> fn)
    {
        progress = std::move(fn);
        return *this;
    }

    /**
     * Reject incoherent combinations with a fatal() naming the
     * offending knobs:
     *   - jobs above max_jobs (thread-pool runaway);
     *   - a non-positive sampling period (an empty waveform can
     *     never be what the caller wanted, traced or not);
     *   - snapshot hooks without memoization (a store or in-flight
     *     map can only feed the memoized replay path — silently
     *     ignoring the hooks would "work" while persisting nothing).
     * Called by SimulationEngine and SweepSession on construction.
     */
    void validate() const;
};

/** Fixed-size worker pool executing sweeps of independent scenarios. */
class SimulationEngine
{
  public:
    explicit SimulationEngine(EngineOptions options = {});

    /** Effective worker count (options.jobs resolved). */
    unsigned jobs() const { return _jobs; }

    /**
     * Execute every scenario of the spec and return the completed
     * result table in deterministic expansion order.
     *
     * If any scenario throws, the remaining scenarios still run to
     * completion, then the exception of the lowest-indexed failing
     * scenario is re-thrown — so error behavior does not depend on
     * the worker count either.
     */
    SweepResult run(const SweepSpec &spec) const;

    /**
     * Execute one scenario on the calling thread. Exposed so tests
     * and tools can compare single-scenario runs against sweep rows.
     */
    ScenarioResult runScenario(const Scenario &scenario) const;

    /**
     * Execute one scenario on a caller-provided Simulator that was
     * built from an identical configuration (the reuse fast path).
     */
    ScenarioResult runScenario(const Scenario &scenario,
                               Simulator &simulator) const;

    /**
     * Execute one scenario, additionally capturing its phase-1
     * activity snapshot for later replay. The scenario must be
     * replayable(); capture == nullptr behaves like plain
     * runScenario().
     */
    ScenarioResult runScenario(const Scenario &scenario,
                               Simulator &simulator,
                               ActivitySnapshot *capture) const;

    /**
     * Execute one scenario's power phase from a phase-1 snapshot
     * captured under the same Scenario::snapshotKey() — the
     * memoized-replay fast path, bit-identical to a full run.
     */
    ScenarioResult replayScenario(const Scenario &scenario,
                                  const ActivitySnapshot &snapshot,
                                  Simulator &simulator) const;

  private:
    EngineOptions _options;
    unsigned _jobs;
};

} // namespace sim
} // namespace gpusimpow

#endif // GPUSIMPOW_SIM_ENGINE_HH
