/**
 * @file
 * Technology tier of the power model (the role CACTI/McPAT's
 * technology layer plays in the paper): per-process-node physical
 * parameters — device capacitances, leakage current densities, wire
 * RC, SRAM cell geometry — plus ITRS-roadmap-style scaling between
 * nodes so one architecture can be projected across processes
 * (paper SectionIII-B: "we can use the ITRS roadmap scaling
 * techniques within McPAT").
 *
 * Two device flavors are exposed: HP (high performance, leaky) for
 * logic and arrays in the core clock domain, and LSTP (low standby
 * power) for large lower-speed arrays.
 */

#ifndef GPUSIMPOW_TECH_TECH_HH
#define GPUSIMPOW_TECH_TECH_HH

namespace gpusimpow {
namespace tech {

/** Transistor flavor per ITRS classification. */
enum class DeviceType { HP, LSTP };

/**
 * Subthreshold-leakage temperature multiplier relative to the 300 K
 * characterization point: doubles roughly every 20 K, the usual rule
 * of thumb. Exposed standalone so the thermal subsystem can rescale
 * leakage between arbitrary junction temperatures
 * (factorAt(T1)/factorAt(T0)) without rebuilding a TechNode.
 */
double tempLeakFactorAt(double temperature_k);

/** Parameters of one device flavor at one node. */
struct Device
{
    /** Gate capacitance per micron of gate width, F/um. */
    double c_gate_per_um;
    /** Source/drain diffusion capacitance per micron, F/um. */
    double c_diff_per_um;
    /** Subthreshold off-current per micron at 300 K, A/um. */
    double i_sub_per_um;
    /** Gate-leakage current per micron, A/um. */
    double i_gate_per_um;
};

/**
 * One process node. Instances come from TechNode::make(), which
 * interpolates a built-in 65/45/40/32/28 nm table.
 */
struct TechNode
{
    /** Feature size in meters. */
    double feature_m;
    /** Effective supply voltage (DVFS scale applied), V. */
    double vdd;
    /** Supply the node was characterized at (before DVFS scaling), V. */
    double vdd_base;
    /** Junction temperature, K (affects subthreshold leakage). */
    double temperature;

    Device hp;
    Device lstp;

    /** Wire capacitance per meter (intermediate layer), F/m. */
    double c_wire_per_m;
    /** Wire resistance per meter (intermediate layer), ohm/m. */
    double r_wire_per_m;
    /** Wire pitch of the semi-global layer, m. */
    double wire_pitch_m;
    /** 6T SRAM cell area in squared feature sizes (F^2). */
    double sram_cell_f2;
    /** Minimum transistor width, m. */
    double w_min_m;

    /**
     * Subthreshold leakage temperature multiplier relative to 300 K.
     * Doubles roughly every 20 K, the usual rule of thumb.
     */
    double tempLeakFactor() const;

    /** Leakage power of total device width w_um of flavor d, W. */
    double leakage(double w_um, DeviceType d = DeviceType::HP) const;

    /** Gate leakage power of total width w_um, W. */
    double gateLeakage(double w_um, DeviceType d = DeviceType::HP) const;

    /** Dynamic energy of switching capacitance c at full swing, J. */
    double switchEnergy(double c_farad) const;

    /** Area of one 6T SRAM cell, m^2. */
    double sramCellArea() const;

    /**
     * Build a node description.
     *
     * When vdd_scale != 1 the supply-dependent quantities are
     * re-derived at V = vdd_base * vdd_scale: switching energy follows
     * C*V^2 through the effective vdd, subthreshold leakage current
     * follows the DIBL exponential exp((V - vdd_base) / V_DIBL), and
     * gate (tunneling) leakage current follows (V / vdd_base)^3. The
     * identity scale 1.0 is bit-exact against the unscaled node.
     *
     * @param node_nm feature size in nanometers (28..65 supported)
     * @param vdd supply voltage; <= 0 selects the node's nominal Vdd
     * @param temperature junction temperature in K
     * @param vdd_scale DVFS supply scale against the resolved vdd
     */
    static TechNode make(unsigned node_nm, double vdd = -1.0,
                         double temperature = 350.0,
                         double vdd_scale = 1.0);
};

/** DIBL voltage of the subthreshold-leakage model: i_sub grows by e
 *  per this much extra supply (~every 100 mV, the usual ~1 decade per
 *  230 mV DIBL+body-effect trend line). */
constexpr double vdd_dibl_v = 0.1;

/** Accepted node_nm range of TechNode::make (values outside the
 *  built-in 28..65 nm table clamp to its endpoints). */
constexpr unsigned min_node_nm = 20;
constexpr unsigned max_node_nm = 90;

} // namespace tech
} // namespace gpusimpow

#endif // GPUSIMPOW_TECH_TECH_HH
