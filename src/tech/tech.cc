#include "tech/tech.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpusimpow {
namespace tech {

namespace {

/** One row of the built-in node table. */
struct NodeRow
{
    double nm;
    double vdd_nominal;
    double hp_c_gate;   // fF/um
    double hp_c_diff;   // fF/um
    double hp_i_sub;    // nA/um @ 300 K
    double hp_i_gate;   // nA/um
    double lstp_i_sub;  // nA/um @ 300 K
    double sram_cell_f2;
};

/**
 * Built-in technology table. Values follow the ITRS trend lines used
 * by McPAT/CACTI: gate capacitance per micron slowly decreasing, HP
 * subthreshold leakage rising toward smaller nodes, SRAM cell size
 * roughly constant in F^2.
 */
constexpr NodeRow node_table[] = {
    // nm  vdd    cg    cd    isub   igate  lstp   cell
    {65.0, 1.10, 1.10, 0.60, 200.0, 100.0, 0.30, 146.0},
    {45.0, 1.05, 0.95, 0.52, 280.0, 150.0, 0.45, 146.0},
    {40.0, 1.05, 0.90, 0.50, 310.0, 170.0, 0.50, 146.0},
    {32.0, 1.00, 0.85, 0.47, 360.0, 200.0, 0.60, 146.0},
    {28.0, 0.95, 0.80, 0.45, 400.0, 220.0, 0.70, 146.0},
};

constexpr int num_rows = sizeof(node_table) / sizeof(node_table[0]);

/** Linear interpolation between table rows by feature size. */
NodeRow
interpolate(double nm)
{
    if (nm >= node_table[0].nm)
        return node_table[0];
    if (nm <= node_table[num_rows - 1].nm)
        return node_table[num_rows - 1];
    for (int i = 0; i < num_rows - 1; ++i) {
        const NodeRow &a = node_table[i];
        const NodeRow &b = node_table[i + 1];
        if (nm <= a.nm && nm >= b.nm) {
            double t = (a.nm - nm) / (a.nm - b.nm);
            NodeRow r;
            r.nm = nm;
            r.vdd_nominal = a.vdd_nominal + t * (b.vdd_nominal - a.vdd_nominal);
            r.hp_c_gate = a.hp_c_gate + t * (b.hp_c_gate - a.hp_c_gate);
            r.hp_c_diff = a.hp_c_diff + t * (b.hp_c_diff - a.hp_c_diff);
            r.hp_i_sub = a.hp_i_sub + t * (b.hp_i_sub - a.hp_i_sub);
            r.hp_i_gate = a.hp_i_gate + t * (b.hp_i_gate - a.hp_i_gate);
            r.lstp_i_sub = a.lstp_i_sub + t * (b.lstp_i_sub - a.lstp_i_sub);
            r.sram_cell_f2 = a.sram_cell_f2 + t * (b.sram_cell_f2 - a.sram_cell_f2);
            return r;
        }
    }
    return node_table[num_rows - 1];
}

} // namespace

double
tempLeakFactorAt(double temperature_k)
{
    // Subthreshold leakage roughly doubles every 20 K above 300 K.
    return std::pow(2.0, (temperature_k - 300.0) / 20.0);
}

double
TechNode::tempLeakFactor() const
{
    return tempLeakFactorAt(temperature);
}

double
TechNode::leakage(double w_um, DeviceType d) const
{
    const Device &dev = d == DeviceType::HP ? hp : lstp;
    return w_um * dev.i_sub_per_um * tempLeakFactor() * vdd;
}

double
TechNode::gateLeakage(double w_um, DeviceType d) const
{
    const Device &dev = d == DeviceType::HP ? hp : lstp;
    // Gate leakage is only weakly temperature dependent.
    return w_um * dev.i_gate_per_um * vdd;
}

double
TechNode::switchEnergy(double c_farad) const
{
    return c_farad * vdd * vdd;
}

double
TechNode::sramCellArea() const
{
    return sram_cell_f2 * feature_m * feature_m;
}

TechNode
TechNode::make(unsigned node_nm, double vdd, double temperature,
               double vdd_scale)
{
    if (node_nm < min_node_nm || node_nm > max_node_nm)
        fatal("unsupported technology node ", node_nm,
              " nm (supported: ", min_node_nm, "..", max_node_nm,
              " nm, clamped to the 28..65 nm table endpoints)");
    if (vdd_scale <= 0.0)
        fatal("vdd_scale must be positive, got ", vdd_scale);
    if (!(temperature > 0.0 && temperature <= 500.0))
        fatal("junction temperature ", temperature,
              " K out of range (0, 500]");
    NodeRow row = interpolate(static_cast<double>(node_nm));

    TechNode t;
    t.feature_m = node_nm * 1e-9;
    t.vdd_base = vdd > 0.0 ? vdd : row.vdd_nominal;
    t.vdd = t.vdd_base * vdd_scale;
    t.temperature = temperature;

    t.hp.c_gate_per_um = row.hp_c_gate * 1e-15;  // fF/um -> F/um
    t.hp.c_diff_per_um = row.hp_c_diff * 1e-15;
    t.hp.i_sub_per_um = row.hp_i_sub * 1e-9;     // nA/um -> A/um
    t.hp.i_gate_per_um = row.hp_i_gate * 1e-9;

    t.lstp.c_gate_per_um = t.hp.c_gate_per_um * 1.1;
    t.lstp.c_diff_per_um = t.hp.c_diff_per_um * 1.1;
    t.lstp.i_sub_per_um = row.lstp_i_sub * 1e-9;
    t.lstp.i_gate_per_um = t.hp.i_gate_per_um * 0.01;

    // Re-derive the supply-dependent leakage densities at the DVFS
    // point: subthreshold current rises exponentially with supply
    // through DIBL, gate tunneling roughly with V^3. Guarded so the
    // identity point stays bit-exact with the characterization data.
    if (vdd_scale != 1.0) {
        double sub_f = std::exp((t.vdd - t.vdd_base) / vdd_dibl_v);
        double gate_f = vdd_scale * vdd_scale * vdd_scale;
        t.hp.i_sub_per_um *= sub_f;
        t.lstp.i_sub_per_um *= sub_f;
        t.hp.i_gate_per_um *= gate_f;
        t.lstp.i_gate_per_um *= gate_f;
    }

    // Wire parameters for the intermediate/semi-global layer; pitch
    // and per-length RC scale with the node per ITRS trends.
    double scale = static_cast<double>(node_nm) / 40.0;
    t.c_wire_per_m = 0.20e-9;            // ~0.2 fF/um, node-insensitive
    t.r_wire_per_m = 2.5e5 / scale;      // thinner wires resist more
    t.wire_pitch_m = 4.0 * t.feature_m;
    t.sram_cell_f2 = row.sram_cell_f2;
    t.w_min_m = 2.0 * t.feature_m;
    return t;
}

} // namespace tech
} // namespace gpusimpow
